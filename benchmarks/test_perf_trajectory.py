"""Experiment T2 — self-performance: simulator wall-clock throughput.

Times a pinned parameter-server workload on both switch models and
records packets/sec and kernel events/sec of *the simulator itself*.
The measurements land in ``BENCH_PROFILE.json`` at the repo root; the
committed copy is the trajectory baseline, and a run that is more than
20% slower prints a non-blocking ``::warning::`` line (GitHub Actions
renders it as an annotation) instead of failing — wall-clock on shared
CI runners is too noisy for a hard gate.

Measurement discipline (see docs/KERNEL.md):

- the timed region is ``switch.run(workload)`` only — switch
  construction and workload materialization happen outside it, so the
  number tracks the event kernel rather than Python object setup;
- ``events`` counts *logical* events: ``events_dispatched`` plus
  ``events_coalesced``.  Batched admission folds whole same-timestamp
  bursts into single kernel dispatches; the coalesced counter keeps the
  benchmark unit comparable across kernel generations (a coalesced
  event is work the kernel completed, just without a heap round-trip).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchlib import report
from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp
from repro.rmt.switch import RMTSwitch
from repro.sim.event import Simulator
from repro.telemetry import ResourceMonitor, Telemetry

REPO_ROOT = Path(__file__).resolve().parent.parent
PROFILE_PATH = REPO_ROOT / "BENCH_PROFILE.json"

#: Throughput drop versus the committed baseline that triggers a warning.
REGRESSION_THRESHOLD = 0.20

#: The calendar/default kernel should clear this multiple of the
#: committed heap-backend baseline; below it the kernel-bench prints a
#: non-blocking ``::warning::`` (satellite gate for the speed overhaul).
KERNEL_SPEEDUP_FLOOR = 5.0

#: Documented budget for resource-monitor sampling at the default
#: interval; the assert allows 3x for CI timer noise (same pattern as
#: the T1 telemetry-overhead gate).
MONITOR_OVERHEAD_BUDGET = 0.10
MONITOR_NOISE_FACTOR = 3.0

WORKERS = [0, 1, 4, 5]
VECTOR = 256
REPEATS = 5


def _setup_rmt(config, backend=None):
    app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1)
    sim = Simulator(queue_backend=backend) if backend else None
    switch = RMTSwitch(config, app, sim=sim)
    return switch, list(app.workload(config.port_speed_bps))


def _setup_adcp(config, backend=None):
    app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16)
    sim = Simulator(queue_backend=backend) if backend else None
    switch = ADCPSwitch(config, app, sim=sim)
    return switch, list(app.workload(config.port_speed_bps))


def _logical_events(sim) -> int:
    return sim.events_dispatched + sim.events_coalesced


def _measure(setup, config, backend=None) -> dict:
    """Best-of-N run-only wall clock for one switch model.

    Construction and workload materialization stay outside the timed
    region; each repeat uses a fresh switch (``run`` is single-shot).
    """
    best_s = float("inf")
    switch = result = None
    for _ in range(REPEATS):
        switch, workload = setup(config, backend)
        start = time.perf_counter()
        result = switch.run(workload)
        best_s = min(best_s, time.perf_counter() - start)
    # Terminal packets: everything the run disposed of.
    packets = len(result.delivered) + result.consumed + len(result.dropped)
    events = _logical_events(switch._sim)
    return {
        "wall_s": best_s,
        "packets": packets,
        "events": events,
        "events_dispatched": switch._sim.events_dispatched,
        "events_coalesced": switch._sim.events_coalesced,
        "packets_per_s": packets / best_s,
        "events_per_s": events / best_s,
        "sim_duration_s": result.duration_s,
        "queue_backend": switch._sim.queue_backend,
    }


def _baseline() -> dict:
    if not PROFILE_PATH.exists():
        return {}
    try:
        return json.loads(PROFILE_PATH.read_text()).get("switches", {})
    except (json.JSONDecodeError, OSError):
        return {}


def test_perf_trajectory(bench_rmt_config, bench_adcp_config):
    baseline = _baseline()
    measured = {
        "rmt": _measure(_setup_rmt, bench_rmt_config),
        "adcp": _measure(_setup_adcp, bench_adcp_config),
    }

    rows = []
    warnings = []
    for label, row in measured.items():
        rows.append(
            f"{label:>5}: {row['wall_s'] * 1e3:7.2f} ms wall, "
            f"{row['packets_per_s'] / 1e3:8.1f} kpkt/s, "
            f"{row['events_per_s'] / 1e3:8.1f} kevt/s"
        )
        old = baseline.get(label)
        if old and old.get("packets_per_s"):
            ratio = row["packets_per_s"] / old["packets_per_s"]
            rows.append(
                f"       vs committed baseline: {ratio - 1.0:+.1%} pkt/s"
            )
            if ratio < 1.0 - REGRESSION_THRESHOLD:
                warnings.append(
                    f"::warning file=benchmarks/test_perf_trajectory.py::"
                    f"{label} throughput dropped {1.0 - ratio:.0%} vs the "
                    f"committed BENCH_PROFILE.json baseline "
                    f"({row['packets_per_s']:.0f} vs "
                    f"{old['packets_per_s']:.0f} pkt/s)"
                )

    report(
        "T2 — self-performance trajectory (wall-clock throughput)",
        rows + warnings,
        data={"switches": measured, "warnings": warnings},
    )
    for line in warnings:
        print(line)

    try:
        profile = json.loads(PROFILE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        profile = {}
    profile["workload"] = {
        "app": "ParameterServerApp",
        "workers": WORKERS,
        "vector": VECTOR,
        "repeats": REPEATS,
    }
    profile["switches"] = measured
    PROFILE_PATH.write_text(json.dumps(profile, indent=1))

    # Sanity, not a perf gate: both simulators made real progress.
    assert measured["rmt"]["packets"] > 0
    assert measured["adcp"]["packets"] > 0
    assert measured["rmt"]["events_per_s"] > 0
    assert measured["adcp"]["events_per_s"] > 0


def _measure_fabric(target: str) -> dict:
    """Best-of-N wall clock for one fabric run (leaf-spine, all-reduce)."""
    from repro.fabric import run_fabric

    best_s = float("inf")
    run = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        run = run_fabric(
            "leaf-spine-2x2",
            "fabric-allreduce",
            target=target,
            make_telemetry=lambda: None,
        )
        best_s = min(best_s, time.perf_counter() - start)
    packets = sum(
        len(s.result.delivered) + s.result.consumed + len(s.result.dropped)
        for s in run.sections
    )
    events = run.events + run.events_coalesced
    return {
        "wall_s": best_s,
        "packets": packets,
        "events": events,
        "events_dispatched": run.events,
        "events_coalesced": run.events_coalesced,
        "packets_per_s": packets / best_s,
        "events_per_s": events / best_s,
        "sim_duration_s": run.duration_s,
    }


def test_fabric_throughput_trajectory():
    """Fabric-scale simulator throughput: 4 switches on one kernel.

    Same trajectory discipline as the single-switch rows — measured
    pkt/s and evt/s folded into BENCH_PROFILE.json under ``fabric``,
    non-blocking warning on a >20% drop vs the committed copy.
    """
    try:
        profile = json.loads(PROFILE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        profile = {}
    baseline = profile.get("fabric", {})

    measured = {
        "rmt": _measure_fabric("rmt"),
        "adcp": _measure_fabric("adcp"),
    }

    rows = []
    warnings = []
    for label, row in measured.items():
        rows.append(
            f"{label:>5}: {row['wall_s'] * 1e3:7.2f} ms wall, "
            f"{row['packets_per_s'] / 1e3:8.1f} kpkt/s, "
            f"{row['events_per_s'] / 1e3:8.1f} kevt/s"
        )
        old = baseline.get(label)
        if old and old.get("packets_per_s"):
            ratio = row["packets_per_s"] / old["packets_per_s"]
            rows.append(
                f"       vs committed baseline: {ratio - 1.0:+.1%} pkt/s"
            )
            if ratio < 1.0 - REGRESSION_THRESHOLD:
                warnings.append(
                    f"::warning file=benchmarks/test_perf_trajectory.py::"
                    f"fabric {label} throughput dropped {1.0 - ratio:.0%} "
                    f"vs the committed BENCH_PROFILE.json baseline "
                    f"({row['packets_per_s']:.0f} vs "
                    f"{old['packets_per_s']:.0f} pkt/s)"
                )

    report(
        "T2c — fabric throughput trajectory (leaf-spine-2x2 all-reduce)",
        rows + warnings,
        data={"fabric": measured, "warnings": warnings},
    )
    for line in warnings:
        print(line)

    profile["fabric"] = measured
    PROFILE_PATH.write_text(json.dumps(profile, indent=1))

    for row in measured.values():
        assert row["packets"] > 0
        assert row["events_per_s"] > 0
        # Batched admission must stay live at fabric scale: the injector
        # merges cross-host same-timestamp bursts so the kernel coalesces
        # them instead of heap-dispatching each arrival (the seed profile
        # regressed to events_coalesced == 0; this is the guard).
        assert row["events_coalesced"] > 0


SERVE_DURATION_NS = 10_000.0
SERVE_WINDOW_NS = 500.0


def _measure_serve(target: str, *, monitored: bool) -> dict:
    """Best-of-N wall clock for one serve run (leaf-spine, all-reduce).

    ``monitored=True`` is the real serving configuration: rolling
    windows every ``SERVE_WINDOW_NS`` plus per-switch resource monitors
    on the same grid.  ``monitored=False`` drives the identical
    schedule with monitoring effectively off — no per-switch monitors
    (``make_telemetry=lambda: None``) and a single window covering the
    whole horizon, so the time probe fires once.  The pair isolates the
    cost of always-on observation.
    """
    from repro.serve.runner import run_serve

    kwargs = dict(
        target=target,
        duration_ns=SERVE_DURATION_NS,
        window_ns=SERVE_WINDOW_NS if monitored else SERVE_DURATION_NS,
    )
    if not monitored:
        kwargs["make_telemetry"] = lambda: None
    best_s = float("inf")
    run = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        run = run_serve("leaf-spine-2x2", "fabric-allreduce", **kwargs)
        best_s = min(best_s, time.perf_counter() - start)
    totals = run.totals()
    events = run.events + run.events_coalesced
    return {
        "wall_s": best_s,
        "offered_packets": totals["injected"],
        "delivered_packets": totals["delivered_to_hosts"],
        "offered_pps_sim": totals["injected"] / run.schedule.duration_s,
        "achieved_pps_sim": totals["delivered_to_hosts"] / run.duration_s,
        "windows": totals["windows"],
        "events": events,
        "events_per_s": events / best_s,
        "sim_duration_s": run.duration_s,
    }


def test_serve_throughput_trajectory():
    """Serving-mode trajectory: offered vs achieved load, monitor cost.

    Folds a ``serve`` section into BENCH_PROFILE.json: per-target
    events/s with full monitoring on, the offered vs achieved packet
    rates (simulated domain), and the wall-clock overhead of always-on
    monitoring vs the same run with observation off.  Non-blocking
    warning on a >20% events/s drop vs the committed copy.
    """
    try:
        profile = json.loads(PROFILE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        profile = {}
    baseline = profile.get("serve", {})

    measured = {}
    rows = []
    warnings = []
    for label in ("rmt", "adcp"):
        full = _measure_serve(label, monitored=True)
        bare = _measure_serve(label, monitored=False)
        overhead = full["wall_s"] / bare["wall_s"] - 1.0
        measured[label] = {
            **full,
            "bare_wall_s": bare["wall_s"],
            "monitor_overhead": overhead,
        }
        rows.append(
            f"{label:>5}: {full['wall_s'] * 1e3:7.2f} ms wall, "
            f"{full['events_per_s'] / 1e3:8.1f} kevt/s, "
            f"offered {full['offered_pps_sim'] / 1e6:6.1f} Mpkt/s vs "
            f"achieved {full['achieved_pps_sim'] / 1e6:6.1f} Mpkt/s (sim), "
            f"monitor overhead {overhead:+.1%}"
        )
        old = baseline.get(label)
        if old and old.get("events_per_s"):
            ratio = full["events_per_s"] / old["events_per_s"]
            rows.append(
                f"       vs committed baseline: {ratio - 1.0:+.1%} evt/s"
            )
            if ratio < 1.0 - REGRESSION_THRESHOLD:
                warnings.append(
                    f"::warning file=benchmarks/test_perf_trajectory.py::"
                    f"serve {label} throughput dropped {1.0 - ratio:.0%} "
                    f"vs the committed BENCH_PROFILE.json baseline "
                    f"({full['events_per_s']:.0f} vs "
                    f"{old['events_per_s']:.0f} evt/s)"
                )

    report(
        "T2e — serve throughput trajectory (leaf-spine-2x2, open-loop)",
        rows + warnings,
        data={"serve": measured, "warnings": warnings},
    )
    for line in warnings:
        print(line)

    profile["serve"] = measured
    PROFILE_PATH.write_text(json.dumps(profile, indent=1))

    for row in measured.values():
        assert row["delivered_packets"] > 0
        assert row["offered_packets"] >= row["delivered_packets"]
        assert row["events_per_s"] > 0
        assert row["windows"] >= 10


#: events/s of the pre-overhaul kernel on the RMT quickstart row (the
#: BENCH_PROFILE.json committed before the calendar-queue + batched-
#: admission rework).  The kernel-bench warns when any backend falls
#: under KERNEL_SPEEDUP_FLOOR times this floor.
SEED_HEAP_EVENTS_PER_S = 6573.9


def test_kernel_backend_bench(bench_rmt_config):
    """Kernel-bench: the RMT quickstart row, once per queue backend.

    Records run-only events/s for the ``heap`` and ``calendar`` backends
    under ``kernel`` in BENCH_PROFILE.json and prints a non-blocking
    ``::warning::`` when a backend lands below 5x the pre-overhaul heap
    baseline.  Both backends dispatch the identical event order, so the
    packet outcomes must agree exactly — that part is a hard assert.
    """
    measured = {
        backend: _measure(_setup_rmt, bench_rmt_config, backend=backend)
        for backend in ("heap", "calendar")
    }

    rows = []
    warnings = []
    for backend, row in measured.items():
        speedup = row["events_per_s"] / SEED_HEAP_EVENTS_PER_S
        rows.append(
            f"{backend:>9}: {row['wall_s'] * 1e3:7.2f} ms wall, "
            f"{row['events_per_s'] / 1e3:8.1f} kevt/s "
            f"({speedup:.1f}x the pre-overhaul heap kernel)"
        )
        if speedup < KERNEL_SPEEDUP_FLOOR:
            warnings.append(
                f"::warning file=benchmarks/test_perf_trajectory.py::"
                f"kernel backend {backend!r} at {row['events_per_s']:.0f} "
                f"evt/s is only {speedup:.1f}x the pre-overhaul heap "
                f"baseline ({SEED_HEAP_EVENTS_PER_S:.0f} evt/s); the "
                f"speed overhaul floor is {KERNEL_SPEEDUP_FLOOR:.0f}x"
            )

    report(
        "T2d — kernel backend bench (RMT quickstart, run-only)",
        rows + warnings,
        data={"kernel": measured, "warnings": warnings},
    )
    for line in warnings:
        print(line)

    try:
        profile = json.loads(PROFILE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        profile = {}
    profile["kernel"] = {
        "seed_heap_events_per_s": SEED_HEAP_EVENTS_PER_S,
        "speedup_floor": KERNEL_SPEEDUP_FLOOR,
        "backends": measured,
    }
    PROFILE_PATH.write_text(json.dumps(profile, indent=1))

    # Backend choice must never change simulation results.
    heap, calendar = measured["heap"], measured["calendar"]
    assert heap["packets"] == calendar["packets"]
    assert heap["events"] == calendar["events"]
    assert heap["sim_duration_s"] == calendar["sim_duration_s"]


#: Documented events/s budget for ``sampled`` telemetry vs ``off`` on the
#: RMT quickstart row (docs/SPANS.md); the assert allows the same 3x CI
#: noise factor as the monitor gate.
SAMPLED_OVERHEAD_BUDGET = 0.10

#: Head-sampling rate used by the observability-overhead rows (matches
#: the ``repro spans`` default).
OBSERVABILITY_SAMPLE = 16


def _measure_level(config, level: str) -> dict:
    """Best-of-N run-only wall clock for one telemetry level.

    Each repeat builds a fresh hub (span recorders accumulate) and a
    fresh switch; only ``switch.run`` is timed, as in ``_measure``.
    """
    best_s = float("inf")
    switch = result = None
    for _ in range(REPEATS):
        telemetry = Telemetry.at_level(
            level, seed=0, sample=OBSERVABILITY_SAMPLE
        )
        app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1)
        switch = RMTSwitch(config, app, telemetry=telemetry)
        workload = list(app.workload(config.port_speed_bps))
        start = time.perf_counter()
        result = switch.run(workload)
        best_s = min(best_s, time.perf_counter() - start)
    packets = len(result.delivered) + result.consumed + len(result.dropped)
    events = _logical_events(switch._sim)
    return {
        "level": level,
        "wall_s": best_s,
        "packets": packets,
        "events": events,
        "events_dispatched": switch._sim.events_dispatched,
        "events_coalesced": switch._sim.events_coalesced,
        "events_per_s": events / best_s,
        "fast_path": switch.trace is None,
    }


def test_observability_overhead(bench_rmt_config):
    """T2f — events/s at every telemetry level on the RMT quickstart.

    The ladder's contract is that ``counters`` and ``sampled`` keep the
    fast path: batched admission live (``events_coalesced > 0``) and
    sampled events/s within ~10% of ``off``.  ``full`` pays for complete
    tracing and is reported but not gated.  A sampled overhead above the
    budget prints a non-blocking ``::warning::``; the hard asserts cover
    the structural claims (fast path kept, identical logical progress)
    with a noise allowance on the wall-clock one.
    """
    measured = {
        level: _measure_level(bench_rmt_config, level)
        for level in ("off", "counters", "sampled", "full")
    }
    off = measured["off"]

    rows = []
    warnings = []
    for level, row in measured.items():
        overhead = off["wall_s"] and row["wall_s"] / off["wall_s"] - 1.0
        row["overhead_vs_off"] = overhead
        rows.append(
            f"{level:>9}: {row['wall_s'] * 1e3:7.2f} ms wall, "
            f"{row['events_per_s'] / 1e3:8.1f} kevt/s "
            f"({overhead:+.1%} vs off, "
            f"{row['events_coalesced']} coalesced)"
        )
    sampled = measured["sampled"]
    if sampled["overhead_vs_off"] > SAMPLED_OVERHEAD_BUDGET:
        warnings.append(
            f"::warning file=benchmarks/test_perf_trajectory.py::"
            f"sampled telemetry costs {sampled['overhead_vs_off']:+.1%} "
            f"events/s vs off on the RMT quickstart (budget "
            f"{SAMPLED_OVERHEAD_BUDGET:.0%}); the span fast path may "
            f"have regressed"
        )

    report(
        "T2f — observability overhead (RMT quickstart, per telemetry level)",
        rows + warnings,
        data={"observability": measured, "warnings": warnings},
    )
    for line in warnings:
        print(line)

    try:
        profile = json.loads(PROFILE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        profile = {}
    profile["observability"] = {
        "sample": OBSERVABILITY_SAMPLE,
        "budget": SAMPLED_OVERHEAD_BUDGET,
        "levels": measured,
    }
    PROFILE_PATH.write_text(json.dumps(profile, indent=1))

    # Structural fast-path claims are exact; wall clock gets noise room.
    for level in ("off", "counters", "sampled"):
        assert measured[level]["fast_path"]
        assert measured[level]["events_coalesced"] > 0
        assert measured[level]["events_dispatched"] == off["events_dispatched"]
    assert not measured["full"]["fast_path"]
    # Logical progress is level-invariant (dispatched + coalesced).
    assert len({row["events"] for row in measured.values()}) == 1
    assert len({row["packets"] for row in measured.values()}) == 1
    assert (
        sampled["overhead_vs_off"]
        < SAMPLED_OVERHEAD_BUDGET * MONITOR_NOISE_FACTOR
    )


def _monitored_hub():
    """A hub carrying only the resource monitor: tracing disabled so the
    measurement isolates clock-grid sampling from event recording."""
    telemetry = Telemetry(monitor=ResourceMonitor())
    telemetry.trace.disable()
    return telemetry


def _time_rmt(config, make_telemetry, repeats=5):
    """Best-of-N wall clock for one telemetry variant."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1)
        switch = RMTSwitch(config, app, telemetry=make_telemetry())
        start = time.perf_counter()
        result = switch.run(app.workload(config.port_speed_bps))
        best = min(best, time.perf_counter() - start)
    return best, result


def test_monitor_sampling_overhead(bench_rmt_config):
    """Resource-monitor sampling at the default interval stays under its
    documented 10% throughput budget, and the sampled run's simulated
    outcome is identical to the unmonitored one (probes only read)."""
    baseline_s, baseline = _time_rmt(bench_rmt_config, lambda: None)
    monitored_s, monitored = _time_rmt(bench_rmt_config, _monitored_hub)
    overhead = monitored_s / baseline_s - 1.0

    report(
        "T2b — resource-monitor sampling overhead (RMT, default interval)",
        [
            f"no monitor  : {baseline_s * 1e3:7.2f} ms",
            f"with monitor: {monitored_s * 1e3:7.2f} ms "
            f"({overhead:+.1%} vs baseline; "
            f"budget {MONITOR_OVERHEAD_BUDGET:.0%})",
        ],
        data={
            "baseline_s": baseline_s,
            "monitored_s": monitored_s,
            "monitor_overhead": overhead,
            "budget": MONITOR_OVERHEAD_BUDGET,
        },
    )

    # Fold the number into the trajectory profile next to the throughput
    # rows (tolerate a missing file when this test runs alone).
    try:
        profile = json.loads(PROFILE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        profile = {}
    profile["monitor_overhead"] = {
        "baseline_s": baseline_s,
        "monitored_s": monitored_s,
        "overhead": overhead,
        "budget": MONITOR_OVERHEAD_BUDGET,
    }
    PROFILE_PATH.write_text(json.dumps(profile, indent=1))

    assert overhead < MONITOR_OVERHEAD_BUDGET * MONITOR_NOISE_FACTOR
    assert monitored.duration_s == baseline.duration_s
    assert len(monitored.delivered) == len(baseline.delivered)
    assert monitored.recirculated_packets == baseline.recirculated_packets
