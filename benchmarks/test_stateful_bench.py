"""Experiment T2g — stateful-primitive throughput trajectory.

Times each stateful reference workload (one per primitive: token bucket
exercises state-compute replication, SYN flood the EFSM engine, heavy
hitter the count-min + MAT promotion path, key cache the replicated
object) on both switch models and records kernel events/s of *the
simulator itself*.  The measurements land under ``stateful`` in
``BENCH_PROFILE.json``; the committed copy is the trajectory baseline,
and a run more than 20% slower prints a non-blocking ``::warning::``
line instead of failing — wall-clock on shared CI runners is too noisy
for a hard gate.

Same measurement discipline as ``test_perf_trajectory.py``: only
``switch.run(arrivals)`` is timed (stream construction and placement
binding stay outside), and ``events`` counts dispatched + coalesced so
the unit stays comparable across kernel generations.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchlib import report
from repro.adcp.switch import ADCPSwitch
from repro.rmt.switch import RMTSwitch
from repro.stateful.runner import _ADCP_EPP, _single_configs
from repro.stateful.workloads import STATEFUL_WORKLOADS, build_single

REPO_ROOT = Path(__file__).resolve().parent.parent
PROFILE_PATH = REPO_ROOT / "BENCH_PROFILE.json"

#: Throughput drop versus the committed baseline that triggers a warning.
REGRESSION_THRESHOLD = 0.20

#: Which primitive each workload stresses (for the printed table).
PRIMITIVES = {
    "tokenbucket": "scr",
    "synflood": "efsm",
    "heavyhitter": "count-min+mat",
    "keycache": "replicated",
}

FLOWS = 64
SKEW = 1.2
PACKETS = 240
SEED = 0
REPEATS = 3


def _measure(workload: str, target: str) -> dict:
    """Best-of-N run-only wall clock for one (workload, target) pair."""
    config = _single_configs(target)
    epp = _ADCP_EPP.get(workload, 1) if target == "adcp" else 1
    best_s = float("inf")
    switch = result = None
    for _ in range(REPEATS):
        stream = build_single(
            workload,
            flows=FLOWS,
            skew=SKEW,
            packets=PACKETS,
            seed=SEED,
            elements_per_packet=epp,
            port_speed_bps=config.port_speed_bps,
        )
        cls = ADCPSwitch if target == "adcp" else RMTSwitch
        switch = cls(config, stream.app)
        arrivals = stream.arrivals(config.port_speed_bps)
        start = time.perf_counter()
        result = switch.run(arrivals)
        best_s = min(best_s, time.perf_counter() - start)
    packets = len(result.delivered) + result.consumed + len(result.dropped)
    events = switch._sim.events_dispatched + switch._sim.events_coalesced
    return {
        "primitive": PRIMITIVES[workload],
        "wall_s": best_s,
        "packets": packets,
        "events": events,
        "events_dispatched": switch._sim.events_dispatched,
        "events_coalesced": switch._sim.events_coalesced,
        "packets_per_s": packets / best_s,
        "events_per_s": events / best_s,
        "sim_duration_s": result.duration_s,
    }


def test_stateful_throughput_trajectory():
    """T2g — events/s per stateful primitive, both targets."""
    try:
        profile = json.loads(PROFILE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        profile = {}
    baseline = profile.get("stateful", {}).get("workloads", {})

    measured = {}
    rows = []
    warnings = []
    for workload in STATEFUL_WORKLOADS:
        for target in ("rmt", "adcp"):
            label = f"{target}:{workload}"
            row = _measure(workload, target)
            measured[label] = row
            rows.append(
                f"{label:>17} [{row['primitive']:>13}]: "
                f"{row['wall_s'] * 1e3:7.2f} ms wall, "
                f"{row['events_per_s'] / 1e3:8.1f} kevt/s"
            )
            old = baseline.get(label)
            if old and old.get("events_per_s"):
                ratio = row["events_per_s"] / old["events_per_s"]
                rows.append(
                    f"{'':>34}vs committed baseline: "
                    f"{ratio - 1.0:+.1%} evt/s"
                )
                if ratio < 1.0 - REGRESSION_THRESHOLD:
                    warnings.append(
                        f"::warning file=benchmarks/test_stateful_bench.py::"
                        f"stateful {label} throughput dropped "
                        f"{1.0 - ratio:.0%} vs the committed "
                        f"BENCH_PROFILE.json baseline "
                        f"({row['events_per_s']:.0f} vs "
                        f"{old['events_per_s']:.0f} evt/s)"
                    )

    report(
        "T2g — stateful primitive trajectory (single switch, run-only)",
        rows + warnings,
        data={"stateful": measured, "warnings": warnings},
    )
    for line in warnings:
        print(line)

    profile["stateful"] = {
        "flows": FLOWS,
        "skew": SKEW,
        "packets": PACKETS,
        "repeats": REPEATS,
        "workloads": measured,
    }
    PROFILE_PATH.write_text(json.dumps(profile, indent=1))

    # Sanity, not a perf gate: every primitive made real progress.
    for label, row in measured.items():
        assert row["packets"] > 0, label
        assert row["events_per_s"] > 0, label
