"""Experiment T1 — Table 1, the coflow application classes.

Runs each of the four application patterns on both architectures and
reports the metrics the paper's argument predicts: correctness parity,
ADCP's zero recirculation, and the CCT gap opened by scalar packets plus
state-placement workarounds on RMT.
"""

from __future__ import annotations

import dataclasses

import pytest

from benchlib import report
from repro.adcp.switch import ADCPSwitch
from repro.apps import (
    DBShuffleApp,
    GraphMiningApp,
    GroupCommApp,
    ParameterServerApp,
)
from repro.rmt.switch import RMTSwitch
from repro.sim.rng import make_rng


WORKERS = [0, 1, 4, 5]


def _run_pair(bench_rmt_config, bench_adcp_config, build_app, run_app):
    """Run one app on both targets; returns per-target (cct, recirc)."""
    rows = {}
    adcp_app = build_app(16)
    adcp = ADCPSwitch(bench_adcp_config, adcp_app)
    result = run_app(adcp_app, adcp, bench_adcp_config.port_speed_bps)
    rows["adcp"] = (result.duration_s, result.recirculated_packets, adcp_app)

    rmt_app = build_app(1)
    rmt = RMTSwitch(bench_rmt_config, rmt_app)
    result = run_app(rmt_app, rmt, bench_rmt_config.port_speed_bps)
    rows["rmt"] = (result.duration_s, result.recirculated_packets, rmt_app)
    return rows


class TestMLTraining:
    def test_parameter_aggregation(self, benchmark, bench_rmt_config, bench_adcp_config):
        results_store = {}

        def run():
            def build(width):
                return ParameterServerApp(WORKERS, 128, elements_per_packet=width)

            def drive(app, switch, speed):
                result = switch.run(app.workload(speed))
                results_store[app.elements_per_packet] = app.collect_results(
                    result.delivered
                )
                return result

            return _run_pair(bench_rmt_config, bench_adcp_config, build, drive)

        rows = benchmark(run)
        report(
            "Table 1 / ML training: parameter aggregation",
            [
                f"{label:>5}: CCT {cct * 1e9:8.0f} ns, recirc {recirc}"
                for label, (cct, recirc, _) in rows.items()
            ],
        )
        assert results_store[16] == results_store[1]  # same answer
        assert rows["adcp"][1] == 0
        assert rows["rmt"][1] > 0
        assert rows["rmt"][0] > 3 * rows["adcp"][0]


class TestDatabaseAnalytics:
    def test_filter_aggregate_reshuffle(
        self, benchmark, bench_rmt_config, bench_adcp_config
    ):
        answers = {}

        def run():
            def build(width):
                return DBShuffleApp(
                    [0, 1], [4, 5], groups=16, elements_per_packet=width
                )

            def drive(app, switch, speed):
                result = switch.run(app.workload(speed, elements_per_mapper=96))
                answers[app.elements_per_packet] = app.collect_results(
                    result.delivered
                )
                return result

            return _run_pair(bench_rmt_config, bench_adcp_config, build, drive)

        rows = benchmark(run)
        report(
            "Table 1 / database analytics: filter-aggregate-reshuffle",
            [
                f"{label:>5}: CCT {cct * 1e9:8.0f} ns, recirc {recirc}"
                for label, (cct, recirc, _) in rows.items()
            ],
        )
        assert answers[16] == answers[1]
        assert rows["adcp"][1] == 0
        assert rows["rmt"][0] > rows["adcp"][0]


class TestGraphMining:
    def test_bsp_frontier_dedup(self, benchmark, bench_rmt_config, bench_adcp_config):
        forwarded = {}

        def run():
            def build(width):
                return GraphMiningApp(WORKERS, 512, elements_per_packet=width)

            def drive(app, switch, speed):
                result = switch.run(
                    app.superstep_workload(speed, 120, 2.0, make_rng(21))
                )
                forwarded[app.elements_per_packet] = app.collect_forwarded(
                    result.delivered
                )
                return result

            return _run_pair(bench_rmt_config, bench_adcp_config, build, drive)

        rows = benchmark(run)
        dedup_ratio = rows["adcp"][2].duplicates_absorbed / max(
            1, rows["adcp"][2].uniques_forwarded
        )
        report(
            "Table 1 / graph pattern mining: BSP frontier dedup",
            [
                f"{label:>5}: CCT {cct * 1e9:8.0f} ns, recirc {recirc}"
                for label, (cct, recirc, _) in rows.items()
            ]
            + [f"switch absorbed {dedup_ratio:.1f} duplicates per unique vertex"],
        )
        assert forwarded[16] == forwarded[1]
        assert rows["adcp"][1] == 0
        assert rows["rmt"][0] > rows["adcp"][0]


class TestGroupCommunications:
    def test_group_fanout(self, benchmark, bench_rmt_config, bench_adcp_config):
        deliveries = {}

        def run():
            def build(width):
                return GroupCommApp({1: [2, 4, 6]}, elements_per_packet=width)

            def drive(app, switch, speed):
                result = switch.run(
                    app.workload(speed, senders={0: 1}, transfers_per_sender=8)
                )
                deliveries[app.elements_per_packet] = app.deliveries_per_port(
                    result.delivered
                )
                return result

            return _run_pair(bench_rmt_config, bench_adcp_config, build, drive)

        rows = benchmark(run)
        report(
            "Table 1 / group communications: switch-resolved multicast",
            [
                f"{label:>5}: CCT {cct * 1e9:8.0f} ns, recirc {recirc}"
                for label, (cct, recirc, _) in rows.items()
            ],
        )
        assert deliveries[16] == deliveries[1] == {2: 8, 4: 8, 6: 8}
        assert rows["adcp"][1] == 0
        assert rows["rmt"][1] > 0
