"""Experiment F1 — Figure 1, the RMT architecture and its structure.

Figure 1 is a block diagram; the reproducible content is the structural
inventory (n ports muxed n/p into pipelines, shared-nothing stages, one
TM) and the baseline behaviour of the simulated device: line-rate
forwarding through ingress -> TM -> egress.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.net.traffic import DeterministicSource, make_coflow_packet
from repro.rmt.switch import RMTSwitch
from repro.units import BITS_PER_BYTE


def _line_rate_run(config, packets_count=400):
    switch = RMTSwitch(config)
    packets = []
    for i in range(packets_count):
        packet = make_coflow_packet(1, 0, i, [(i, i)])
        packet.meta.egress_port = 7
        packets.append(packet)
    source = DeterministicSource(0, config.port_speed_bps, packets)
    result = switch.run(source.packets())
    return switch, result


def test_fig1_structural_inventory(benchmark, bench_rmt_config):
    switch = benchmark(RMTSwitch, bench_rmt_config)
    config = bench_rmt_config

    lines = [
        f"ports: {config.num_ports} x {config.port_speed_bps / 1e9:.0f} G",
        f"ingress pipelines: {len(switch.ingress)} "
        f"({config.ports_per_pipeline} ports each)",
        f"egress pipelines: {len(switch.egress)}",
        f"stages per pipeline: {config.stages_per_pipeline} "
        f"x {config.maus_per_stage} MAUs",
        f"traffic managers: 1 (shared-memory, output-buffered)",
        f"pipeline clock: {config.frequency_hz / 1e9:.2f} GHz",
    ]
    report("Figure 1: RMT structural inventory", lines)

    assert len(switch.ingress) == config.pipelines
    assert len(switch.egress) == config.pipelines
    for pipeline in switch.ingress:
        assert len(pipeline.stages) == config.stages_per_pipeline
        assert len(pipeline.attached_ports) == config.ports_per_pipeline
        assert pipeline.array_width == 1  # scalar MAUs
    # Every port is attached to exactly one ingress and one egress pipeline.
    covered = [p for pipe in switch.ingress for p in pipe.attached_ports]
    assert sorted(covered) == list(range(config.num_ports))


def test_fig1_line_rate_forwarding(benchmark, bench_rmt_config):
    switch, result = benchmark(_line_rate_run, bench_rmt_config)

    packets = 400
    wire = result.delivered[0].wire_bytes * BITS_PER_BYTE
    source_duration = packets * wire / bench_rmt_config.port_speed_bps
    lines = [
        f"delivered {result.delivered_count}/{packets} packets",
        f"source duration {source_duration * 1e9:.0f} ns, "
        f"last departure {result.last_departure() * 1e9:.0f} ns",
    ]
    report("Figure 1: line-rate forwarding baseline", lines)

    assert result.delivered_count == packets
    assert not result.dropped
    assert result.recirculated_packets == 0
    # Line rate: the switch adds latency but not throughput loss.
    assert result.last_departure() <= source_duration * 1.05 + 1e-6


def test_fig1_stage_registers_are_shared_nothing(benchmark, bench_rmt_config):
    """'Pipelines have shared-nothing stages': state written on one
    pipeline is invisible to its siblings."""

    def probe():
        switch = RMTSwitch(bench_rmt_config)
        switch.ingress[0].get_register("probe", 8).add(0, 7)
        return switch.ingress[1].get_register("probe", 8).read(0)

    other_value = benchmark(probe)
    report(
        "Figure 1: shared-nothing pipeline state",
        [f"write 7 on pipeline 0; read on pipeline 1 -> {other_value}"],
    )
    assert other_value == 0
