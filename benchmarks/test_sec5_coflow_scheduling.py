"""Experiment A4 — section 5's programmable-scheduler opportunity.

"We believe intriguing opportunities can be unleashed when making the
scheduler programmable ... especially in an architecture like the one
proposed here that heavily relies on multiple shared memory schedulers."

Quantified over the coflow-scheduling substrate: a coflow-aware TM policy
(SEBF) against the application-blind disciplines a classic TM offers
(FIFO, per-flow fair sharing), on a synthetic heavy-tailed coflow mix.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.coflow.scheduler import (
    FairSharingScheduler,
    FifoCoflowScheduler,
    SebfScheduler,
)
from repro.coflow.workload import synthesize_workload
from repro.sim.rng import make_rng
from repro.units import GBPS


def _run_policies(num_coflows: int, seed: int):
    workload = synthesize_workload(num_coflows, 16, make_rng(seed))
    coflows = list(workload)
    results = {}
    for policy in (FifoCoflowScheduler, FairSharingScheduler, SebfScheduler):
        results[policy.name] = policy().schedule(coflows, 100 * GBPS)
    return results


def test_sec5_coflow_aware_tm_beats_blind_disciplines(benchmark):
    results = benchmark(_run_policies, 60, 17)

    lines = [f"{'policy':>6} {'avg CCT':>10} {'makespan':>10}"]
    for name, result in results.items():
        lines.append(
            f"{name:>6} {result.average_cct * 1e6:>8.2f}us "
            f"{result.makespan * 1e6:>8.2f}us"
        )
    sebf, fifo, fair = (results[k] for k in ("sebf", "fifo", "fair"))
    lines.append(
        f"SEBF improves average CCT {fifo.average_cct / sebf.average_cct:.2f}x "
        f"over FIFO, {fair.average_cct / sebf.average_cct:.2f}x over fair"
    )
    report("Section 5: coflow-aware TM scheduling", lines)

    assert sebf.average_cct < fifo.average_cct
    assert sebf.average_cct < fair.average_cct
    # Work conservation: makespans agree within rounding.
    assert sebf.makespan == pytest.approx(fifo.makespan, rel=0.05)


def test_sec5_gain_grows_with_contention(benchmark):
    """More concurrent coflows -> more reordering opportunity -> a larger
    coflow-aware win."""

    def sweep():
        gains = {}
        for n in (10, 40, 160):
            results = _run_policies(n, seed=n)
            gains[n] = (
                results["fifo"].average_cct / results["sebf"].average_cct
            )
        return gains

    gains = benchmark(sweep)
    report(
        "Section 5: SEBF gain vs coflow count",
        [f"{n:>4} coflows -> {gain:4.2f}x" for n, gain in gains.items()],
    )
    assert gains[160] > gains[10]
    assert all(gain >= 1.0 for gain in gains.values())
