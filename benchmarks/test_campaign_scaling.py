"""Experiment T3 — campaign engine: worker scaling and determinism.

Runs the builtin ``design-space`` campaign (2x2x2 grid, 8 real ADCP
cells) once serially and once on four workers, with fresh output and
cache directories for each run, then asserts the two aggregate reports
are byte-identical — the engine's core contract.  Wall-clock numbers
land in ``BENCH_PROFILE.json`` under ``campaign_scaling``.

The ISSUE's >= 1.8x speedup target only applies on machines with at
least four cores; on smaller runners (this container reports one) the
numbers are recorded and a sub-target speedup prints a non-blocking
``::warning::`` annotation rather than failing — same policy as the T2
throughput trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchlib import report
from repro.campaign import resolve_spec, run_campaign

REPO_ROOT = Path(__file__).resolve().parent.parent
PROFILE_PATH = REPO_ROOT / "BENCH_PROFILE.json"

#: Minimum parallel speedup expected at 4 workers on >= MIN_CORES cores.
SPEEDUP_TARGET = 1.8
MIN_CORES = 4
PARALLEL_WORKERS = 4


def _run(spec, tmp_path, run_id, workers):
    start = time.perf_counter()
    run = run_campaign(
        spec,
        workers=workers,
        out_dir=tmp_path / f"out{run_id}",
        cache_dir=tmp_path / f"cache{run_id}",
    )
    wall_s = time.perf_counter() - start
    assert run.exit_code == 0, [o.error for o in run.failed]
    return run, wall_s


def test_campaign_scaling(tmp_path):
    spec = resolve_spec("design-space")
    cores = os.cpu_count() or 1

    serial, serial_s = _run(spec, tmp_path, "serial", workers=1)
    parallel, parallel_s = _run(
        spec, tmp_path, "parallel", workers=PARALLEL_WORKERS
    )

    serial_bytes = serial.report_path.read_bytes()
    parallel_bytes = parallel.report_path.read_bytes()
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0

    warnings = []
    if cores >= MIN_CORES and speedup < SPEEDUP_TARGET:
        warnings.append(
            f"::warning file=benchmarks/test_campaign_scaling.py::"
            f"campaign speedup {speedup:.2f}x at {PARALLEL_WORKERS} "
            f"workers on {cores} cores is below the {SPEEDUP_TARGET}x "
            f"target"
        )

    measured = {
        "campaign": spec.name,
        "cells": len(spec.cells) or len(spec.expand()),
        "workers": PARALLEL_WORKERS,
        "cores": cores,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "report_bytes": len(serial_bytes),
        "byte_identical": serial_bytes == parallel_bytes,
        "speedup_target": SPEEDUP_TARGET,
        "target_applies": cores >= MIN_CORES,
    }
    report(
        "T3 — campaign worker scaling (design-space, 8 ADCP cells)",
        [
            f"serial (1 worker)  : {serial_s:6.2f} s",
            f"parallel ({PARALLEL_WORKERS} workers): {parallel_s:6.2f} s "
            f"({speedup:.2f}x, {cores} core(s) available)",
            f"aggregate reports byte-identical: "
            f"{measured['byte_identical']}",
        ]
        + warnings,
        data={"campaign_scaling": measured, "warnings": warnings},
    )
    for line in warnings:
        print(line)

    try:
        profile = json.loads(PROFILE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        profile = {}
    profile["campaign_scaling"] = measured
    PROFILE_PATH.write_text(json.dumps(profile, indent=1))

    # Hard gates: determinism always holds; the speedup target is only
    # enforced where the ISSUE scopes it (>= MIN_CORES cores).
    assert serial_bytes == parallel_bytes
    assert len(serial.report["sections"]) == 8
    if cores >= MIN_CORES:
        # Warn (above) rather than fail on shared CI noise, but a
        # parallel run slower than serial on real cores is a bug.
        assert speedup > 1.0
