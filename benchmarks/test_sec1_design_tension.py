"""Experiment F0 — the §1 tension the paper opens with.

"Classic programmable switches operate at line rate but impose
significant limitations on the expressiveness of their programming
models.  In contrast, alternative designs relax the strict line rate
requirement but are more easily programmable.  The common belief is that
a switch's performance and its programmability are at odds."

Measured as a four-way matrix over the same aggregation coflow: the
software (BMv2-class) and hardware-threaded (Trio-class) baselines run
the wide, shared-memory program but fall short of line rate; RMT holds
line rate but forces the scalar/state contortions; the ADCP is the
paper's claim that, for coflow programs, the axes are not actually at
odds.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp
from repro.baselines import RtcConfig, RunToCompletionSwitch, ThreadedSwitch
from repro.net.traffic import make_coflow_packet
from repro.rmt.switch import RMTSwitch
from repro.units import GBPS

WORKERS = [0, 1, 4, 5]
VECTOR = 128


def _matrix(bench_rmt_config, bench_adcp_config):
    rows = {}

    app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16)
    software = RunToCompletionSwitch(RtcConfig(), app)
    result = software.run(app.workload(100 * GBPS))
    assert app.collect_results(result.delivered) == app.expected_result()
    sample = make_coflow_packet(1, 0, 0, [(1, 1)])
    rows["software"] = (
        result.duration_s,
        software.sustained_pps(sample) / software.line_rate_pps(),
        16,
    )

    app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16)
    threaded = ThreadedSwitch(app=app)
    result = threaded.run(app.workload(100 * GBPS))
    assert app.collect_results(result.delivered) == app.expected_result()
    rows["threaded"] = (
        result.duration_s,
        threaded.sustained_pps(sample) / threaded.line_rate_pps(),
        16,
    )

    app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1)
    rmt = RMTSwitch(bench_rmt_config, app)
    result = rmt.run(app.workload(bench_rmt_config.port_speed_bps))
    assert app.collect_results(result.delivered) == app.expected_result()
    rows["rmt"] = (result.duration_s, 1.0, 1)

    app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16)
    adcp = ADCPSwitch(bench_adcp_config, app)
    result = adcp.run(app.workload(bench_adcp_config.port_speed_bps))
    assert app.collect_results(result.delivered) == app.expected_result()
    rows["adcp"] = (result.duration_s, 1.0, 16)
    return rows


def test_sec1_performance_programmability_matrix(
    benchmark, bench_rmt_config, bench_adcp_config
):
    rows = benchmark(_matrix, bench_rmt_config, bench_adcp_config)

    lines = [
        f"{'design':>9} {'line-rate frac':>14} {'elems/pkt':>9} {'coflow CCT':>11}"
    ]
    for name, (cct, line_fraction, width) in rows.items():
        lines.append(
            f"{name:>9} {line_fraction:>13.0%} {width:>9} {cct * 1e9:>9.0f} ns"
        )
    report("Section 1: the performance/programmability matrix", lines)

    # The common belief: expressive designs sacrifice line rate...
    assert rows["software"][1] < 0.2
    assert rows["software"][1] < rows["threaded"][1] < 1.0
    # ...and the line-rate design sacrifices expressiveness (scalar).
    assert rows["rmt"][2] == 1
    # The paper's claim: the ADCP holds line rate AND the wide program.
    assert rows["adcp"][1] == 1.0 and rows["adcp"][2] == 16
    # It beats the scalar line-rate design and the software design on the
    # coflow.  (The hardware-threaded baseline is competitive on this
    # *under-saturated* small coflow — its deficit only appears at
    # sustained minimum-packet load, which the ceilings test captures.)
    assert rows["adcp"][0] < rows["rmt"][0]
    assert rows["adcp"][0] < rows["software"][0]


def test_sec1_throughput_ceilings(benchmark):
    """Sustained packet rates of the three non-RMT designs versus the
    line-rate requirement, minimum packets."""

    def ceilings():
        sample = make_coflow_packet(1, 0, 0, [(1, 1)])
        software = RunToCompletionSwitch(RtcConfig())
        threaded = ThreadedSwitch()
        return {
            "line_rate": software.line_rate_pps(),
            "software": software.sustained_pps(sample),
            "threaded": threaded.sustained_pps(sample),
        }

    rates = benchmark(ceilings)
    report(
        "Section 1: packet-rate ceilings (800 G of ports, 84 B packets)",
        [f"{name:>9}: {rate / 1e6:7.0f} Mpps" for name, rate in rates.items()],
    )
    assert rates["software"] < rates["threaded"] < rates["line_rate"]
    assert rates["line_rate"] / rates["software"] > 5
    assert rates["line_rate"] / rates["threaded"] < 2.5
