"""Experiment F2 — Figure 2, egress-pipeline processing limitations.

The figure's claims, measured on the simulator:

1. Coflows whose input ports span ingress pipelines cannot converge at
   ingress (state is pipeline-local).
2. Converging them at an egress pipeline restricts the result's direct
   reachability to that pipeline's ports; anything else recirculates.
3. Egress-side processing "forego[es] using the ingress pipeline stages"
   — half the stage budget.
"""

from __future__ import annotations

import dataclasses

import pytest

from benchlib import report
from repro.apps import ParameterServerApp
from repro.rmt.switch import RMTSwitch


WORKERS = [0, 1, 4, 5]  # straddle both pipelines of the 8-port config
VECTOR = 64


def _pin_run(config):
    app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1)
    switch = RMTSwitch(config, app)
    result = switch.run(app.workload(config.port_speed_bps))
    return app, switch, result


def test_fig2_coflow_cannot_converge_at_ingress(benchmark, bench_rmt_config):
    """Input flows land on the pipelines their ports attach to: the
    coflow's ingress state is split, never unified."""

    def ingress_pipelines_of_coflow():
        config = bench_rmt_config
        return {config.pipeline_of_port(port) for port in WORKERS}

    pipelines = benchmark(ingress_pipelines_of_coflow)
    report(
        "Figure 2: coflow ingress spread",
        [f"worker ports {WORKERS} land on ingress pipelines {sorted(pipelines)}"],
    )
    assert len(pipelines) > 1  # cannot converge without help


def test_fig2_egress_pinning_restricts_direct_reachability(
    benchmark, bench_rmt_config
):
    """With recirculation disabled, the aggregation's outputs cannot reach
    the full worker set: the egress pipeline's ports are the universe."""
    config = dataclasses.replace(bench_rmt_config, allow_recirculation=False)
    app, switch, result = benchmark(_pin_run, config)

    reachable = {p.meta.egress_port for p in result.delivered}
    report(
        "Figure 2: reachability under egress pinning (no recirculation)",
        [
            f"workers expecting results: {set(WORKERS)}",
            f"ports actually reached: {reachable or '{}'}",
            f"unreachable emissions: {result.unreachable_emissions}",
        ],
    )
    assert result.unreachable_emissions > 0
    assert app.collect_results(result.delivered) != app.expected_result()


def test_fig2_recirculation_tax(benchmark, bench_rmt_config):
    """With recirculation enabled the answer is correct, but a measurable
    fraction of switch bandwidth is spent re-forwarding packets."""
    app, switch, result = benchmark(_pin_run, bench_rmt_config)

    useful_bytes = result.delivered_wire_bytes
    tax_bytes = result.recirculated_wire_bytes
    report(
        "Figure 2: recirculation bandwidth tax (egress pinning)",
        [
            f"delivered wire bytes: {useful_bytes}",
            f"recirculated wire bytes: {tax_bytes} "
            f"({tax_bytes / useful_bytes:.1%} of delivered)",
            f"recirculated packets: {result.recirculated_packets}",
        ],
    )
    assert app.collect_results(result.delivered) == app.expected_result()
    assert result.recirculated_packets > 0
    assert tax_bytes > 0.1 * useful_bytes


def test_fig2_stage_budget_halved(benchmark, bench_rmt_config):
    """Computation delayed to the egress pipeline uses only the egress
    stages; the ADCP's central area adds a third pipeline's worth."""

    def stage_budgets():
        config = bench_rmt_config
        total = 2 * config.stages_per_pipeline
        egress_only = config.stages_per_pipeline
        return total, egress_only

    total, egress_only = benchmark(stage_budgets)
    report(
        "Figure 2: usable stages when computing at egress",
        [f"full path {total} stages; egress-pinned computation {egress_only}"],
    )
    assert egress_only == total // 2
