"""Shared fixtures for the benchmark harness.

Every module here regenerates one paper artifact (a table, a figure's
claim, or an inline number).  Each benchmark calls ``benchmark(...)`` on
the computation that regenerates the artifact, so
``pytest benchmarks/ --benchmark-only`` both *times* the reproduction and
*checks* its shape via asserts.  The regenerated rows are printed through
:func:`benchlib.report`.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.adcp.config import ADCPConfig
from repro.rmt.config import RMTConfig
from repro.units import GBPS


@pytest.fixture
def bench_rmt_config() -> RMTConfig:
    """8-port, 2-pipeline RMT switch: small enough to simulate quickly,
    big enough to exhibit every cross-pipeline effect."""
    return RMTConfig(
        num_ports=8,
        pipelines=2,
        port_speed_bps=100 * GBPS,
        min_wire_packet_bytes=84.0,
        frequency_hz=1.25e9,
    )


@pytest.fixture
def bench_adcp_config() -> ADCPConfig:
    """Matching 8-port ADCP switch (1:2 demux, 4 central pipelines)."""
    return ADCPConfig(
        num_ports=8,
        port_speed_bps=100 * GBPS,
        demux_factor=2,
        central_pipelines=4,
    )
