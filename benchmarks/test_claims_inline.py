"""Experiment C1 — the paper's inline quantitative claims.

Section 2(3): "64x 10 Gbps ports ... around 952 Mpps. Therefore, running
this pipeline at 952 MHz can achieve line speed"; "64x 100 Gbps ports can
generate just about 9.5 Bpps"; "current RMT-based switches have 12.8 Tbps
throughput, they can 'only' process 5-6 billion packets per second".
Section 3.3: "each of these [1.6 Tbps] ports can deliver around 2.38
Bpps"; "demultiplexing a port at a 1:2 ratio, we can reduce the clock
speed by half".
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.analytical.scaling import mux_config
from repro.units import BPPS, ETHERNET_MIN_WIRE_BYTES, GBPS, GHZ, MPPS, packet_rate


def test_claim_952_mpps_at_64x10g(benchmark):
    rate = benchmark(packet_rate, 64 * 10 * GBPS, ETHERNET_MIN_WIRE_BYTES)
    report(
        "Claim: original RMT pipeline packet rate",
        [f"64 x 10 G at 84 B wire -> {rate / MPPS:.1f} Mpps (paper: ~952)"],
    )
    assert rate / MPPS == pytest.approx(952.4, abs=1.0)


def test_claim_9_5_bpps_at_64x100g(benchmark):
    rate = benchmark(packet_rate, 64 * 100 * GBPS, ETHERNET_MIN_WIRE_BYTES)
    report(
        "Claim: 64 x 100 G aggregate packet rate",
        [f"-> {rate / BPPS:.2f} Bpps (paper: ~9.5)"],
    )
    assert rate / BPPS == pytest.approx(9.52, abs=0.1)


def test_claim_12_8t_rmt_does_5_to_6_bpps(benchmark):
    """The Table 2 row-3 design point: 4 pipelines x 1.62 GHz = 6.5 Bpps
    nominal, 5-6 Bpps at the published clock figures."""

    def total_rate():
        config = mux_config(12.8e12, 400 * GBPS, 4, 247)
        return config.total_packet_rate_pps

    rate = benchmark(total_rate)
    report(
        "Claim: 12.8 Tbps RMT switch packet budget",
        [f"4 pipelines x 1.62 GHz -> {rate / BPPS:.2f} Bpps (paper: 5-6)"],
    )
    assert 5.0 <= rate / BPPS <= 6.9


def test_claim_2_38_bpps_at_1600g(benchmark):
    rate = benchmark(packet_rate, 1600 * GBPS, ETHERNET_MIN_WIRE_BYTES)
    report(
        "Claim: one 1.6 Tbps port packet rate",
        [f"-> {rate / BPPS:.2f} Bpps (paper: ~2.38)"],
    )
    assert rate / BPPS == pytest.approx(2.38, abs=0.01)


def test_claim_demux_halves_clock(benchmark):
    from repro.units import pipeline_frequency

    def clocks():
        full = pipeline_frequency(1600 * GBPS, 1, ETHERNET_MIN_WIRE_BYTES)
        half = pipeline_frequency(1600 * GBPS, 0.5, ETHERNET_MIN_WIRE_BYTES)
        return full, half

    full, half = benchmark(clocks)
    report(
        "Claim: 1:2 demux halves the clock",
        [
            f"1.6 T undemuxed -> {full / GHZ:.2f} GHz",
            f"1.6 T at 1:2    -> {half / GHZ:.2f} GHz",
        ],
    )
    assert half == pytest.approx(full / 2)
    assert full / GHZ == pytest.approx(2.38, abs=0.01)
    assert half / GHZ == pytest.approx(1.19, abs=0.01)


def test_claim_tm_pipeline_count_scales(benchmark):
    """Section 3.3: 'We anticipate that this number will increase to 64 in
    51.2 Tbps switches and double for 102.4 Tbps, but this will keep clock
    rates in the same range as today's.'"""
    from repro.analytical.frontier import required_demux_factor

    def pipeline_counts():
        counts = {}
        for total_tbps, port_gbps in ((51.2, 1600), (102.4, 3200)):
            ports = int(total_tbps * 1000 / port_gbps)
            m = required_demux_factor(port_gbps)
            counts[total_tbps] = (ports * m, port_gbps, m)
        return counts

    counts = benchmark(pipeline_counts)
    report(
        "Claim: TM-facing pipeline counts at future throughputs",
        [
            f"{total:>6} Tbps: {ports} ports x 1:{m} demux -> {lanes} pipelines"
            for total, (lanes, port, m) in counts.items()
            for ports in [lanes // m]
        ],
    )
    lanes_51, _, m51 = counts[51.2]
    lanes_102, _, m102 = counts[102.4]
    assert lanes_51 == 64
    assert lanes_102 == 128
    # Clock rates stay "in the same range as today's" (at or under 1.62).
    from repro.units import pipeline_frequency

    for port_gbps, m in ((1600, m51), (3200, m102)):
        clock = pipeline_frequency(port_gbps * GBPS, 1.0 / m, ETHERNET_MIN_WIRE_BYTES)
        assert clock / GHZ <= 1.7
