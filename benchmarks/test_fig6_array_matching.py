"""Experiments F6 + C2 — Figure 6, array matching, and the 16x key-rate
headroom claim of section 3.2.

Two levels:

- Analytical: key rate = packet rate x array width; at the 12.8 Tbps
  design point the scalar ceiling is ~6 Bops/s and the 16-wide ceiling is
  ~96 Bops/s ("misses a potential 16x performance boost").
- Simulated: the same aggregation coflow shipped at widths 1..16 through
  the ADCP model; element throughput must scale close to linearly.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.adcp.switch import ADCPSwitch
from repro.analytical.keyrate import KeyRateModel, rmt_key_rate_ceiling
from repro.apps import ParameterServerApp


WIDTHS = (1, 2, 4, 8, 16)


def test_fig6_analytical_key_rate_sweep(benchmark):
    def sweep():
        model = KeyRateModel(packet_rate_pps=6e9)
        return {w: (model.key_rate(w), model.goodput(w), model.speedup(w))
                for w in WIDTHS}

    rows = benchmark(sweep)
    lines = [f"{'width':>5} {'keys/s':>10} {'goodput':>8} {'speedup':>8}"]
    for width, (rate, goodput, speedup) in rows.items():
        lines.append(
            f"{width:>5} {rate / 1e9:>8.1f} B {goodput:>7.1%} {speedup:>7.1f}x"
        )
    report("Figure 6: key rate vs array width (analytical, 6 Bpps budget)", lines)

    for width, (rate, goodput, speedup) in rows.items():
        assert speedup == pytest.approx(width)
    assert rows[16][1] > 4 * rows[1][1]  # goodput amortization


def test_fig6_section32_headline(benchmark):
    ceiling = benchmark(rmt_key_rate_ceiling)
    report(
        "Section 3.2 headline: the missed 16x",
        [
            f"scalar ceiling: {ceiling['scalar_ops_per_s'] / 1e9:.0f} Bops/s",
            f"MAUs per stage: {ceiling['maus_per_stage']:.0f}",
            f"array ceiling:  {ceiling['array_ops_per_s'] / 1e9:.0f} Bops/s "
            f"({ceiling['missed_factor']:.0f}x)",
        ],
    )
    assert ceiling["missed_factor"] == 16.0


def test_fig6_simulated_element_rate_sweep(benchmark, bench_adcp_config):
    """End-to-end: the same 256-element aggregation at each packing
    factor.  Two measurements per width:

    - *keys per central-pipeline cycle* — the section 3.2 quantity, which
      must equal the width (one packet retires per cycle, carrying
      ``width`` keys);
    - *end-to-end element rate* — bounded by port wire time, where the
      win is the goodput ratio (~7x from 1 to 16 at this header size)
      rather than the full 16x.
    """

    def sweep():
        rows = {}
        for width in WIDTHS:
            app = ParameterServerApp(
                [0, 1, 4, 5], 256, elements_per_packet=width
            )
            switch = ADCPSwitch(bench_adcp_config, app)
            result = switch.run(app.workload(bench_adcp_config.port_speed_bps))
            assert app.collect_results(result.delivered) == app.expected_result()
            central_packets = sum(
                switch.stats.value(f"{c.path}.packets") for c in switch.central
            )
            central_elements = sum(
                switch.stats.value(f"{c.path}.elements") for c in switch.central
            )
            keys_per_cycle = central_elements / central_packets
            elements = 256 * 4  # vector x workers
            rows[width] = (keys_per_cycle, elements / result.duration_s)
        return rows

    rows = benchmark(sweep)
    base_rate = rows[1][1]
    report(
        "Figure 6: aggregation across array widths (ADCP simulation)",
        [
            f"{w:>2}-wide: {kpc:5.2f} keys/pipeline-cycle, "
            f"{rate / 1e9:6.2f} Gelem/s end-to-end ({rate / base_rate:4.1f}x)"
            for w, (kpc, rate) in rows.items()
        ],
    )
    # Pipeline-level: keys per cycle ~= array width (input packets are
    # full-width; tiny deviation from result/flush traffic).
    for width in WIDTHS:
        assert rows[width][0] == pytest.approx(width, rel=0.1)
    assert rows[16][0] > 15 * rows[1][0]
    # End-to-end: monotone, bounded by the goodput ratio.
    rates = [rows[w][1] for w in WIDTHS]
    assert all(b > a for a, b in zip(rates, rates[1:]))
    assert rows[16][1] > 3 * rows[1][1]
    assert rows[16][1] / rows[1][1] < 16.5
