"""Experiment F3 — Figure 3, replication due to scalar processing.

"If we need to match many keys against the same table and those keys came
from the same packet, that table must be replicated."  Regenerated as a
sweep: keys-per-packet in {1, 2, 4, 8, 16}; on the scalar target the
compiler must place k copies (k x memory, same capacity), on the array
target always one.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.program.compiler import Compiler, adcp_target, rmt_target
from repro.program.graph import ProgramGraph
from repro.program.spec import TableSpec
from repro.tables.mat import MatchKind


WIDTHS = (1, 2, 4, 8, 16)


def _allocate_sweep():
    rows = []
    for keys in WIDTHS:
        spec = TableSpec(
            "kv", MatchKind.EXACT, key_width_bits=64, capacity=16384,
            keys_per_packet=keys,
        )
        program = ProgramGraph()
        program.add_table(spec)
        scalar = Compiler(rmt_target()).allocate(program)

        program2 = ProgramGraph()
        program2.add_table(spec)
        array = Compiler(adcp_target(array_width=16)).allocate(program2)
        rows.append(
            (
                keys,
                scalar.replication_factor("kv"),
                scalar.total_sram_blocks,
                array.replication_factor("kv"),
                array.total_sram_blocks,
            )
        )
    return rows


def test_fig3_replication_sweep(benchmark):
    rows = benchmark(_allocate_sweep)

    lines = [f"{'k/pkt':>5} {'RMT copies':>10} {'RMT blocks':>10} "
             f"{'ADCP copies':>11} {'ADCP blocks':>11}"]
    for keys, r_copies, r_blocks, a_copies, a_blocks in rows:
        lines.append(
            f"{keys:>5} {r_copies:>10} {r_blocks:>10} {a_copies:>11} {a_blocks:>11}"
        )
    report("Figure 3: table copies vs keys per packet", lines)

    base_blocks = rows[0][2]
    for keys, r_copies, r_blocks, a_copies, a_blocks in rows:
        assert r_copies == keys            # linear replication on RMT
        assert r_blocks == keys * base_blocks
        assert a_copies == 1               # single copy on ADCP
        assert a_blocks == base_blocks


def test_fig3_effective_capacity_collapse(benchmark):
    """Replicas hold the same entries: at 16 keys/packet the same memory
    budget holds 16x fewer distinct entries on RMT."""

    def capacity_per_block():
        results = {}
        for keys in (1, 16):
            spec = TableSpec(
                "kv", MatchKind.EXACT, key_width_bits=64, capacity=16384,
                keys_per_packet=keys,
            )
            program = ProgramGraph()
            program.add_table(spec)
            allocation = Compiler(rmt_target()).allocate(program)
            results[keys] = (
                allocation.effective_capacity("kv") / allocation.total_sram_blocks
            )
        return results

    density = benchmark(capacity_per_block)
    report(
        "Figure 3: distinct entries per SRAM block on RMT",
        [f"{keys:>2} keys/pkt -> {value:8.1f} entries/block"
         for keys, value in density.items()],
    )
    assert density[1] == pytest.approx(16 * density[16])


def test_fig3_stateful_tables_cannot_replicate(benchmark, bench_rmt_config):
    """Replication only works for read-only tables; read-write state
    diverges across copies, so stateful apps must go scalar — enforced by
    the switch model at admission."""
    from repro.apps import ParameterServerApp
    from repro.errors import CompileError
    from repro.rmt.switch import RMTSwitch

    def try_wide_stateful():
        app = ParameterServerApp([0, 1], 64, elements_per_packet=4)
        try:
            RMTSwitch(bench_rmt_config, app)
            return False
        except CompileError:
            return True

    rejected = benchmark(try_wide_stateful)
    report(
        "Figure 3: stateful multi-key packets on RMT",
        [f"4-key stateful packet format rejected at compile time: {rejected}"],
    )
    assert rejected
