"""Experiment A5 — section 3.3's parsing caveat.

"Parsing still needs to be done at port speed, but parsing efficiency is
linked to the complexity of structure within packets rather than port
speed."

Regenerated as: (a) the parser's inspected share of the link falls as
packets grow while the match-action side's demand is what demux fixes;
(b) the parser clock needed per port speed at a fixed header structure,
showing lookahead width (a structure knob) is the lever, not demux.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.net.parser import ParseGraph, Parser
from repro.net.parser_analysis import (
    analyze_graph,
    measure_parser_work,
    parser_requirement,
)
from repro.net.traffic import make_coflow_packet
from repro.units import GBPS, GHZ


def test_sec33_structure_vs_port_speed(benchmark):
    def sweep():
        graph = ParseGraph.standard_coflow_graph()
        rows = []
        for speed in (100, 400, 800, 1600):
            req = parser_requirement(graph, speed * GBPS, lookahead_bytes=64)
            rows.append(
                (speed, req.header_fraction, req.parser_clock_hz / GHZ)
            )
        return rows

    rows = benchmark(sweep)
    report(
        "Section 3.3: parser demand vs port speed (fixed 61 B structure)",
        [
            f"{speed:>5} G: inspects {fraction:5.1%} of minimum packets, "
            f"needs {clock:4.2f} GHz at 64 B lookahead"
            for speed, fraction, clock in rows
        ],
    )
    # Structure share is speed-invariant; clock scales linearly with speed.
    fractions = {f for _, f, _ in rows}
    assert len(fractions) == 1
    clocks = [c for _, _, c in rows]
    assert clocks[-1] == pytest.approx(16 * clocks[0], rel=1e-6)


def test_sec33_structure_complexity_is_the_knob(benchmark):
    """Same port, richer structure: the parser clock grows with header
    depth, independent of the link."""
    from repro.net.headers import IPV4

    def compare():
        simple = ParseGraph.standard_coflow_graph()
        # A tunneled variant: two extra encapsulation headers.
        from repro.net.parser import ParseState

        deep = ParseGraph(start="outer0")
        deep.add(ParseState("outer0", header_type=IPV4,
                            transitions={"default": "outer1"}))
        deep.add(ParseState("outer1", header_type=IPV4,
                            transitions={"default": "ethernet"}))
        for name in ("ethernet", "ipv4", "udp", "coflow"):
            deep.add(simple.state(name))
        deep.validate()
        req_simple = parser_requirement(simple, 800 * GBPS, lookahead_bytes=32)
        req_deep = parser_requirement(deep, 800 * GBPS, lookahead_bytes=32)
        return (
            analyze_graph(simple).max_header_bytes,
            req_simple.parser_clock_hz / GHZ,
            analyze_graph(deep).max_header_bytes,
            req_deep.parser_clock_hz / GHZ,
        )

    simple_bytes, simple_clock, deep_bytes, deep_clock = benchmark(compare)
    report(
        "Section 3.3: structure complexity drives the parser clock",
        [
            f"standard stack: {simple_bytes} B headers -> {simple_clock:.2f} GHz",
            f"tunneled stack: {deep_bytes} B headers -> {deep_clock:.2f} GHz",
        ],
    )
    assert deep_bytes > simple_bytes
    assert deep_clock > simple_clock


def test_sec33_empirical_parser_work(benchmark):
    """Drive real packets: measured bytes-examined per packet matches the
    analytical worst case for full-stack traffic."""

    def measure():
        parser = Parser(ParseGraph.standard_coflow_graph())
        packets = [
            make_coflow_packet(1, 0, i, [(j, j) for j in range(16)])
            for i in range(200)
        ]
        return measure_parser_work(parser, packets)

    work = benchmark(measure)
    report(
        "Section 3.3: measured parser work (16-element coflow packets)",
        [
            f"mean states visited: {work['mean_states']:.1f}",
            f"mean bytes examined: {work['mean_bytes_examined']:.1f}",
            f"accept rate: {work['accept_rate']:.0%}",
        ],
    )
    assert work["accept_rate"] == 1.0
    assert work["mean_states"] == 4.0
    assert work["mean_bytes_examined"] == pytest.approx(61 + 128)
