"""Experiment A1 — section 4's routing-congestion analysis.

"The traffic managers represent a possible source of routing congestion
... To minimize the congestion, it is important to avoid monolithic and
area-efficient designs for that component.  Instead, their floorplan
should be spread across the layout and interleaved with other logic
elements, e.g., pipelines."

Regenerated as: per-g-cell congestion maps for the monolithic and
interleaved TM floorplans across pipeline counts, plus the ADCP's own
two-TM floorplan.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.feasibility.congestion import (
    Net,
    RoutingEstimator,
    tm_netlist_interleaved,
    tm_netlist_monolithic,
)
from repro.feasibility.floorplan import (
    adcp_floorplan,
    interleaved_tm_floorplan,
    monolithic_tm_floorplan,
)

WIRES_PER_PIPELINE = 512  # a PHV-wide bus worth of signal wires


def _compare(pipelines: int):
    mono = RoutingEstimator(monolithic_tm_floorplan(pipelines)).estimate(
        tm_netlist_monolithic(pipelines, WIRES_PER_PIPELINE)
    )
    inter = RoutingEstimator(interleaved_tm_floorplan(pipelines)).estimate(
        tm_netlist_interleaved(pipelines, WIRES_PER_PIPELINE)
    )
    return mono, inter


def test_sec4_monolithic_vs_interleaved_sweep(benchmark):
    def sweep():
        return {n: _compare(n) for n in (2, 4, 8, 16)}

    results = benchmark(sweep)
    lines = [f"{'pipes':>5} {'mono max':>9} {'mono p95':>9} "
             f"{'inter max':>9} {'inter p95':>9} {'relief':>7}"]
    for n, (mono, inter) in results.items():
        lines.append(
            f"{n:>5} {mono.max_congestion:>9.2f} {mono.percentile(95):>9.2f} "
            f"{inter.max_congestion:>9.2f} {inter.percentile(95):>9.2f} "
            f"{mono.max_congestion / inter.max_congestion:>6.1f}x"
        )
    report("Section 4: TM g-cell congestion, monolithic vs interleaved", lines)

    for n, (mono, inter) in results.items():
        if n >= 4:
            assert inter.max_congestion < mono.max_congestion
    # Monolithic peak grows with pipeline count; interleaved stays flat.
    monos = [results[n][0].max_congestion for n in (2, 4, 8, 16)]
    inters = [results[n][1].max_congestion for n in (2, 4, 8, 16)]
    assert monos == sorted(monos) and monos[-1] > 2 * monos[0]
    assert max(inters) <= 2 * min(inters)


def test_sec4_hotspot_sits_at_the_shared_tm(benchmark):
    """'Routing congestion ... most likely to occur in the proximity of
    heavily shared IP blocks': the hottest g-cell lies inside or adjacent
    to the monolithic TM."""

    def hotspot_distance():
        plan = monolithic_tm_floorplan(8)
        result = RoutingEstimator(plan).estimate(
            tm_netlist_monolithic(8, WIRES_PER_PIPELINE)
        )
        x, y = result.hotspot
        tm = plan.block("tm")
        cx, cy = tm.center
        return abs(x - cx) + abs(y - cy), result.max_congestion

    distance, peak = benchmark(hotspot_distance)
    report(
        "Section 4: congestion hotspot location",
        [f"hotspot at Manhattan distance {distance:.1f} g-cells from TM "
         f"center (peak {peak:.1f})"],
    )
    assert distance < 12


def test_sec4_adcp_two_tm_floorplan(benchmark):
    """The ADCP doubles the TM count; with both TMs interleaved per the
    paper's advice, peak congestion stays in the same class as a single
    interleaved RMT TM."""

    def adcp_congestion():
        lanes, central = 8, 4
        plan = adcp_floorplan(lanes, central)
        nets = []
        per_lane = WIRES_PER_PIPELINE
        for i in range(lanes):
            nets.append(Net(f"ingress{i}", f"tm1_slice{i}", per_lane))
            nets.append(Net(f"tm2_slice{i}", f"egress{i}", per_lane))
        for i in range(central):
            nets.append(Net(f"tm1_slice{i}", f"central{i}", per_lane))
            nets.append(Net(f"central{i}", f"tm2_slice{i}", per_lane))
        for i in range(lanes):
            nets.append(Net(f"tm1_slice{i}", f"tm1_slice{(i + 1) % lanes}", per_lane // 4))
            nets.append(Net(f"tm2_slice{i}", f"tm2_slice{(i + 1) % lanes}", per_lane // 4))
        return RoutingEstimator(plan).estimate(nets)

    result = benchmark(adcp_congestion)
    rmt_inter = RoutingEstimator(interleaved_tm_floorplan(8)).estimate(
        tm_netlist_interleaved(8, WIRES_PER_PIPELINE)
    )
    report(
        "Section 4: ADCP two-TM interleaved floorplan",
        [
            f"ADCP peak congestion: {result.max_congestion:.2f}",
            f"RMT interleaved peak: {rmt_inter.max_congestion:.2f}",
            f"ADCP total wirelength: {result.total_wirelength:.0f} cell-wires",
        ],
    )
    assert result.max_congestion <= 2 * rmt_inter.max_congestion
