"""Experiment A3 — section 3.1's expanded TM semantics.

"The first TM could ... keep a sort order while it merges flows that are
themselves sorted."  Compared against the classic FIFO TM discipline on
the same interleaved arrival pattern: the merge releases a globally
sorted stream (zero inversions) at bounded buffer occupancy; FIFO's
output carries inversions that grow with the flow count.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.adcp.scheduler import (
    FifoScheduler,
    KWayMergeScheduler,
    order_violations,
)
from repro.net.traffic import make_coflow_packet
from repro.sim.rng import make_rng


def _interleaved_sorted_flows(flows: int, per_flow: int, rng):
    """Round-robin-ish interleaving of ``flows`` sorted key streams."""
    streams = []
    for flow in range(flows):
        start = int(rng.integers(0, 50))
        keys = sorted(
            int(k) for k in rng.integers(start, start + 1000, size=per_flow)
        )
        streams.append([(flow, key) for key in keys])
    arrivals = []
    cursors = [0] * flows
    remaining = flows * per_flow
    flow = 0
    while remaining:
        if cursors[flow] < per_flow:
            arrivals.append(streams[flow][cursors[flow]])
            cursors[flow] += 1
            remaining -= 1
        flow = (flow + 1) % flows
    return arrivals


def _packet(flow: int, key: int):
    return make_coflow_packet(1, flow, seq=key, elements=[(key, key)])


def _run_disciplines(flows: int, per_flow: int, seed: int):
    arrivals = _interleaved_sorted_flows(flows, per_flow, make_rng(seed))

    fifo = FifoScheduler()
    for flow, key in arrivals:
        fifo.offer(_packet(flow, key))
    fifo_out = fifo.drain()

    merge = KWayMergeScheduler(flows=list(range(flows)))
    merge_out = []
    for flow, key in arrivals:
        merge_out.extend(merge.offer(_packet(flow, key)))
    for flow in range(flows):
        merge_out.extend(merge.finish_flow(flow))
    return fifo_out, merge_out, merge.max_buffered


@pytest.mark.parametrize("flows", [2, 4, 8])
def test_merge_vs_fifo(benchmark, flows):
    fifo_out, merge_out, buffered = benchmark(
        _run_disciplines, flows, 64, seed=flows
    )

    fifo_violations = order_violations(fifo_out)
    merge_violations = order_violations(merge_out)
    report(
        f"Section 3.1: TM1 merge vs classic FIFO ({flows} sorted flows)",
        [
            f"FIFO inversions:  {fifo_violations}",
            f"merge inversions: {merge_violations}",
            f"merge peak buffer: {buffered} packets",
        ],
    )
    assert len(merge_out) == len(fifo_out) == flows * 64
    assert merge_violations == 0
    assert fifo_violations > flows * 5
    assert buffered <= flows * 64  # bounded, no global sort buffer


def test_merge_is_not_general_sorting(benchmark):
    """The paper is explicit that TM1 does *not* sort: an unsorted input
    flow is rejected rather than silently reordered."""
    from repro.errors import ConfigError

    def probe():
        merge = KWayMergeScheduler(flows=[0])
        merge.offer(_packet(0, 10))
        try:
            merge.offer(_packet(0, 5))
            return False
        except ConfigError:
            return True

    rejected = benchmark(probe)
    report(
        "Section 3.1: unsorted flow handling",
        [f"unsorted input rejected (merge != sort): {rejected}"],
    )
    assert rejected
