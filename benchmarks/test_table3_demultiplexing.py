"""Experiment T3 — regenerate Table 3, "Port demultiplexing examples".

The ADCP lever: splitting each port across m pipelines divides the needed
clock by m while restoring honest 84 B minimum packets.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.analytical.scaling import table3_rows
from repro.adcp.config import table3_config
from repro.units import GHZ


def test_table3_rows_reproduce(benchmark):
    rows = benchmark(table3_rows)

    lines = [
        f"{'port':>6} {'p/pipe':>6} {'minpkt':>6} {'paper':>6} {'model':>7} {'err':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row.port_speed_gbps:>4.0f} G {str(row.ports_per_pipeline):>6} "
            f"{row.min_packet_bytes:>5.0f}B {row.paper_freq_ghz:>5.2f}G "
            f"{row.computed_freq_ghz:>6.3f}G {row.freq_error:>6.2%}"
        )
    report("Table 3: port demultiplexing examples", lines)

    assert len(rows) == 4
    for row in rows:
        assert row.freq_error < 0.01, row

    # Shape: each demuxed row keeps the honest 84 B minimum AND clocks
    # well below its multiplexed sibling.
    mux_800, demux_800, mux_1600, demux_1600 = rows
    assert demux_800.min_packet_bytes == 84
    assert demux_800.computed_freq_ghz < mux_800.computed_freq_ghz / 2
    assert demux_1600.min_packet_bytes == 84
    assert demux_1600.computed_freq_ghz < mux_1600.computed_freq_ghz


def test_table3_simulated_switch_matches_analytics(benchmark, bench_adcp_config):
    """Cross-check: the ADCP switch model's derived lane clock equals the
    analytical Table 3 frequency for the same design point."""

    def lane_clock_ghz():
        return table3_config(800).lane_frequency_hz / GHZ

    clock = benchmark(lane_clock_ghz)
    report(
        "Table 3 cross-check: simulated ADCP lane clock",
        [f"800 G, 1:2 demux, 84 B -> lane clock {clock:.3f} GHz (paper 0.60)"],
    )
    assert clock == pytest.approx(0.60, rel=0.02)


def test_table3_demux_sweep(benchmark):
    """Extension sweep: demux factors 1..8 at both Table 3 port speeds."""
    from repro.analytical.frontier import demux_frontier

    def sweep():
        return {
            speed: demux_frontier(speed, demux_factors=(1, 2, 4, 8))
            for speed in (800, 1600)
        }

    points = benchmark(sweep)
    lines = []
    for speed, frontier in points.items():
        for point in frontier:
            lines.append(
                f"{speed:>5} G 1:{point.demux_factor} -> "
                f"{point.freq_ghz:5.2f} GHz"
            )
    report("Table 3 extension: demux factor sweep", lines)
    for speed, frontier in points.items():
        clocks = [p.freq_ghz for p in frontier]
        assert clocks == sorted(clocks, reverse=True)
        assert clocks[1] == pytest.approx(clocks[0] / 2)
