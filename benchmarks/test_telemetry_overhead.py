"""Experiment T1 — telemetry overhead: disabled must be (near) free.

The telemetry subsystem's core design constraint is that a switch built
*without* a hub pays only a ``trace is None`` check per instrumentation
site.  Time the same workload three ways — no telemetry, a hub with
tracing on, and a hub whose recorder is disabled — and check:

- disabled-tracing wall-clock overhead versus the no-telemetry baseline
  stays under 5%% (with a margin for timer noise in the assert);
- enabled tracing still produces identical simulation results.
"""

from __future__ import annotations

import time

from benchlib import report
from repro.apps import ParameterServerApp
from repro.rmt.switch import RMTSwitch
from repro.telemetry import Telemetry

WORKERS = [0, 1, 4, 5]
VECTOR = 256

#: The documented budget; the assert allows 3x for CI timer noise on a
#: sub-second workload.
OVERHEAD_BUDGET = 0.05
NOISE_FACTOR = 3.0


def _run_once(config, telemetry):
    app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1)
    switch = RMTSwitch(config, app, telemetry=telemetry)
    return switch.run(app.workload(config.port_speed_bps))


def _time_variant(config, make_telemetry, repeats=5):
    """Best-of-N wall-clock for one telemetry variant (min is the
    standard estimator for 'how fast can this go')."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        telemetry = make_telemetry()
        start = time.perf_counter()
        result = _run_once(config, telemetry)
        best = min(best, time.perf_counter() - start)
    return best, result


def _disabled_hub():
    telemetry = Telemetry()
    telemetry.trace.disable()
    return telemetry


def test_disabled_telemetry_overhead_under_budget(benchmark, bench_rmt_config):
    baseline_s, baseline = benchmark(
        _time_variant, bench_rmt_config, lambda: None
    )
    disabled_s, disabled = _time_variant(bench_rmt_config, _disabled_hub)
    enabled_s, enabled = _time_variant(bench_rmt_config, Telemetry)

    overhead = disabled_s / baseline_s - 1.0
    report(
        "T1 — telemetry overhead (RMT quickstart-sized workload)",
        [
            f"no telemetry : {baseline_s * 1e3:7.2f} ms",
            f"hub, disabled: {disabled_s * 1e3:7.2f} ms "
            f"({overhead:+.1%} vs baseline; budget {OVERHEAD_BUDGET:.0%})",
            f"hub, enabled : {enabled_s * 1e3:7.2f} ms "
            f"({enabled_s / baseline_s - 1.0:+.1%} vs baseline)",
        ],
        data={
            "baseline_s": baseline_s,
            "disabled_s": disabled_s,
            "enabled_s": enabled_s,
            "disabled_overhead": overhead,
            "enabled_overhead": enabled_s / baseline_s - 1.0,
            "budget": OVERHEAD_BUDGET,
        },
    )

    assert overhead < OVERHEAD_BUDGET * NOISE_FACTOR
    # The simulated outcome is independent of telemetry entirely.
    assert disabled.duration_s == baseline.duration_s
    assert enabled.duration_s == baseline.duration_s
    assert len(enabled.delivered) == len(baseline.delivered)
