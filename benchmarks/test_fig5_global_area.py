"""Experiment F5 — Figure 5, the global partitioned area.

"We can place a given weight to aggregate on a pipeline based on the
weight's ID hash.  However, this choice does not force us to output the
aggregated weight to the port connected to that pipeline.  Thanks to the
second traffic manager, we can forward the aggregated weight to any port,
or even to multiple ports."

Measured as: hash-partitioned aggregation on the ADCP reaches every
worker port at full rate with zero recirculation, versus the two RMT
workarounds (egress pinning and recirculate-to-state), which either
restrict reachability or pay bandwidth.
"""

from __future__ import annotations

import dataclasses

import pytest

from benchlib import report
from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp
from repro.rmt.config import StateMode
from repro.rmt.switch import RMTSwitch


WORKERS = [0, 1, 4, 5]
VECTOR = 128


def _adcp_run(config):
    app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16)
    switch = ADCPSwitch(config, app)
    result = switch.run(app.workload(config.port_speed_bps))
    return app, switch, result


def test_fig5_any_port_reachability(benchmark, bench_adcp_config):
    app, switch, result = benchmark(_adcp_run, bench_adcp_config)

    placements = switch.tm1.partition_histogram()
    reachable = sorted({p.meta.egress_port for p in result.delivered})
    report(
        "Figure 5: hash placement with any-port output (ADCP)",
        [
            f"TM1 placement histogram over central pipelines: {placements}",
            f"ports reached by results: {reachable}",
            f"recirculated packets: {result.recirculated_packets}",
        ],
    )
    assert app.collect_results(result.delivered) == app.expected_result()
    assert reachable == sorted(WORKERS)
    assert result.recirculated_packets == 0
    assert sum(1 for c in placements if c > 0) >= 2  # truly partitioned


def test_fig5_multicast_of_aggregates(benchmark, bench_adcp_config):
    """'...or even to multiple ports': each aggregated chunk is multicast
    to every worker without extra passes."""
    app, switch, result = benchmark(_adcp_run, bench_adcp_config)

    from repro.apps.base import OP_RESULT

    per_port: dict[int, int] = {}
    for packet in result.delivered:
        if packet.header("coflow")["opcode"] == OP_RESULT:
            per_port[packet.meta.egress_port] = (
                per_port.get(packet.meta.egress_port, 0) + 1
            )
    report(
        "Figure 5: result multicast fan-out",
        [f"result packets per worker port: {per_port}"],
    )
    assert set(per_port) == set(WORKERS)
    assert len(set(per_port.values())) == 1


def test_fig5_three_way_comparison(benchmark, bench_rmt_config, bench_adcp_config):
    """CCT and bandwidth tax: ADCP vs RMT egress-pin vs RMT recirculate,
    same coflow, same port speed."""

    def run_all():
        rows = {}
        app, _, result = _adcp_run(bench_adcp_config)
        rows["adcp"] = (result.duration_s, 0.0, True)

        for label, mode in (
            ("rmt_pin", StateMode.EGRESS_PIN),
            ("rmt_recirc", StateMode.RECIRCULATE),
        ):
            config = dataclasses.replace(bench_rmt_config, state_mode=mode)
            rmt_app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1)
            switch = RMTSwitch(config, rmt_app)
            result = switch.run(rmt_app.workload(config.port_speed_bps))
            correct = rmt_app.collect_results(result.delivered) == rmt_app.expected_result()
            tax = result.recirculated_wire_bytes / max(1, result.delivered_wire_bytes)
            rows[label] = (result.duration_s, tax, correct)
        return rows

    rows = benchmark(run_all)
    report(
        "Figure 5: aggregation coflow, three architectures",
        [
            f"{label:>11}: CCT {duration * 1e9:8.0f} ns, recirc tax {tax:6.1%}, "
            f"correct={correct}"
            for label, (duration, tax, correct) in rows.items()
        ],
    )
    assert all(correct for _, _, correct in rows.values())
    adcp_cct = rows["adcp"][0]
    assert rows["rmt_pin"][0] > 2 * adcp_cct
    assert rows["rmt_recirc"][0] > 2 * adcp_cct
    assert rows["adcp"][1] == 0.0
    assert rows["rmt_pin"][1] > 0.0
    assert rows["rmt_recirc"][1] > 0.0
