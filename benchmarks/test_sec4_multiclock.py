"""Experiment A2 — section 4's multi-clock MAT memory design study.

"We can leverage the lower clock frequency of the pipelines and clock the
MAT table memory at a much higher frequency ... this design links the
memory frequency with the array width we aim to support, which could
potentially restrict scalability."

Regenerated as the design-space table the authors say they are assessing:
for each (pipeline clock, array width), the multi-clock design's memory
frequency and feasibility, the banked alternative's expected throughput
under random keys, and both designs' area factors.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.adcp.multiclock import BankedMatMemory, MultiClockMatMemory
from repro.sim.rng import make_rng
from repro.units import GHZ

LANE_CLOCKS_GHZ = (0.6, 1.19, 1.62)
WIDTHS = (2, 4, 8, 16)


def _design_space():
    rows = []
    rng = make_rng(5)
    for clock_ghz in LANE_CLOCKS_GHZ:
        for width in WIDTHS:
            multi = MultiClockMatMemory(clock_ghz * GHZ, width)
            banked = BankedMatMemory(clock_ghz * GHZ, width)
            banked_kpc = width / banked.expected_batch_cycles(
                width, trials=200, rng=rng
            )
            rows.append(
                (
                    clock_ghz,
                    width,
                    multi.memory_frequency_hz / GHZ,
                    multi.is_feasible,
                    multi.area_factor(),
                    banked_kpc,
                    banked.area_factor(),
                )
            )
    return rows


def test_sec4_design_space_table(benchmark):
    rows = benchmark(_design_space)

    lines = [
        f"{'lane':>5} {'width':>5} {'memclk':>7} {'multi ok':>8} "
        f"{'multi area':>10} {'banked k/cyc':>12} {'banked area':>11}"
    ]
    for clock, width, memclk, feasible, marea, bkpc, barea in rows:
        lines.append(
            f"{clock:>4.2f}G {width:>5} {memclk:>6.1f}G {str(feasible):>8} "
            f"{marea:>10.2f} {bkpc:>12.2f} {barea:>11.2f}"
        )
    report("Section 4: array MAT-memory design space", lines)

    by_key = {(c, w): row for row in rows for c, w in [(row[0], row[1])]}
    # The paper's synergy: slow demuxed lanes leave clock headroom.
    assert by_key[(0.6, 4)][3] is True       # 2.4 GHz memory: fine
    assert by_key[(0.6, 8)][3] is False      # 4.8 GHz: over the wall
    assert by_key[(1.62, 4)][3] is False     # RMT-class clocks lose headroom
    # The scalability restriction: no lane clock supports 16-wide multi-clock.
    assert all(not by_key[(c, 16)][3] for c in LANE_CLOCKS_GHZ)
    # Banked is always buildable but loses throughput to conflicts.
    for row in rows:
        assert 1.0 <= row[5] < row[1]
    # Banked area grows with width; multi-clock area does not.
    assert by_key[(0.6, 16)][6] > by_key[(0.6, 2)][6]
    assert by_key[(0.6, 16)][4] == by_key[(0.6, 2)][4]


def test_sec4_effective_key_rate_comparison(benchmark):
    """Keys per second per stage for the three implementable options at
    the Table 3 lane clock: scalar, banked-8, multi-clock-4."""

    def key_rates():
        clock = 0.6 * GHZ
        rng = make_rng(9)
        scalar = clock * 1
        multi4 = clock * MultiClockMatMemory(clock, 4).lookups_per_pipeline_cycle(
            [1, 2, 3, 4]
        )
        banked8 = clock * 8 / BankedMatMemory(clock, 8).expected_batch_cycles(
            8, trials=300, rng=rng
        )
        return scalar, multi4, banked8

    scalar, multi4, banked8 = benchmark(key_rates)
    report(
        "Section 4: per-stage key rate at a 0.6 GHz lane",
        [
            f"scalar:            {scalar / 1e9:5.2f} Bkeys/s",
            f"multi-clock x4:    {multi4 / 1e9:5.2f} Bkeys/s",
            f"banked x8 (rand):  {banked8 / 1e9:5.2f} Bkeys/s",
        ],
    )
    assert multi4 == pytest.approx(4 * scalar)
    assert banked8 > 1.5 * scalar
    assert banked8 < 8 * scalar  # conflicts forbid the ideal 8x


def test_sec4_max_feasible_width_vs_lane_clock(benchmark):
    """The width/frequency coupling: the slower the lane, the wider the
    feasible multi-clock array — quantifying why demux and arrays are
    synergistic."""

    def widths():
        return {
            clock: MultiClockMatMemory(clock * GHZ, 1).max_feasible_width
            for clock in (0.3, 0.6, 1.19, 1.62)
        }

    result = benchmark(widths)
    report(
        "Section 4: max multi-clock array width per lane clock",
        [f"{clock:>5.2f} GHz lane -> width {width}"
         for clock, width in result.items()],
    )
    values = list(result.values())
    assert values == sorted(values, reverse=True)
    assert result[0.3] >= 13
    assert result[1.62] <= 2
