"""Experiment F4 — Figure 4, the ADCP architecture.

Regenerates the structural delta against RMT: demuxed ports (muxes become
demuxes), a second traffic manager, a central pipeline bank, and
array-capable stages — then checks baseline forwarding through the longer
path still works at line rate.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.adcp.switch import ADCPSwitch
from repro.net.traffic import DeterministicSource, make_coflow_packet
from repro.units import BITS_PER_BYTE, GHZ


def test_fig4_structural_inventory(benchmark, bench_adcp_config):
    switch = benchmark(ADCPSwitch, bench_adcp_config)
    config = bench_adcp_config

    lines = [
        f"ports: {config.num_ports} x {config.port_speed_bps / 1e9:.0f} G, "
        f"demux 1:{config.demux_factor}",
        f"ingress lanes: {len(switch.ingress)} at "
        f"{config.lane_frequency_hz / GHZ:.3f} GHz",
        f"central pipelines: {len(switch.central)} at "
        f"{config.central_clock_hz / GHZ:.3f} GHz (global partitioned area)",
        f"egress lanes: {len(switch.egress)}",
        f"traffic managers: 2 (TM1 app-aware, TM2 classic)",
        f"array width: {config.array_width} (vs 1 on RMT)",
    ]
    report("Figure 4: ADCP structural inventory (red deltas vs Figure 1)", lines)

    assert len(switch.ingress) == config.num_ports * config.demux_factor
    assert len(switch.egress) == config.num_ports * config.demux_factor
    assert len(switch.central) == config.central_pipelines
    assert switch.tm1 is not switch.tm2
    for pipeline in switch.central:
        assert pipeline.attached_ports == ()  # reachable from anywhere
        assert pipeline.array_width == config.array_width
    # Demux inverts the RMT relationship: lanes outnumber ports.
    assert len(switch.ingress) > config.num_ports


def test_fig4_lane_clock_below_rmt(benchmark, bench_adcp_config, bench_rmt_config):
    """The demux dividend: ADCP lanes clock below the RMT pipeline at the
    same port speed and honest minimum packets."""

    def clocks():
        return (
            bench_adcp_config.lane_frequency_hz,
            bench_rmt_config.frequency_hz,
        )

    lane, rmt = benchmark(clocks)
    report(
        "Figure 4: lane clock vs RMT pipeline clock",
        [f"ADCP lane {lane / GHZ:.3f} GHz vs RMT {rmt / GHZ:.3f} GHz"],
    )
    assert lane < rmt


def test_fig4_forwarding_through_central_area(benchmark, bench_adcp_config):
    def run():
        switch = ADCPSwitch(bench_adcp_config)
        packets = []
        for i in range(400):
            packet = make_coflow_packet(1, 0, i, [(i, i)])
            packet.meta.egress_port = 7
            packets.append(packet)
        source = DeterministicSource(0, bench_adcp_config.port_speed_bps, packets)
        return switch.run(source.packets())

    result = benchmark(run)
    wire = result.delivered[0].wire_bytes * BITS_PER_BYTE
    source_duration = 400 * wire / bench_adcp_config.port_speed_bps
    report(
        "Figure 4: line-rate forwarding through ingress->TM1->central->TM2->egress",
        [
            f"delivered {result.delivered_count}/400",
            f"last departure {result.last_departure() * 1e9:.0f} ns "
            f"(source {source_duration * 1e9:.0f} ns)",
        ],
    )
    assert result.delivered_count == 400
    assert all(p.meta.central_pipeline is not None for p in result.delivered)
    assert result.last_departure() <= source_duration * 1.05 + 1e-6
