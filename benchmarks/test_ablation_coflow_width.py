"""Experiment A8 — ablation: how the ADCP advantage scales with coflow width.

The paper's thesis is about *coflows* — coordinated sets of flows.  A
single flow barely suffers on RMT; the taxes (cross-pipeline state,
recirculated results, scalar packets) compound as the coflow widens
across more ports and pipelines.  Sweep the worker count of the
aggregation coflow and track the CCT ratio.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp
from repro.rmt.switch import RMTSwitch


VECTOR = 128
WORKER_SETS = {
    2: [0, 4],          # one port per pipeline
    4: [0, 1, 4, 5],
    8: [0, 1, 2, 3, 4, 5, 6, 7],
}


def _sweep(bench_rmt_config, bench_adcp_config):
    rows = {}
    for width, workers in WORKER_SETS.items():
        adcp_app = ParameterServerApp(workers, VECTOR, elements_per_packet=16)
        adcp = ADCPSwitch(bench_adcp_config, adcp_app)
        adcp_result = adcp.run(
            adcp_app.workload(bench_adcp_config.port_speed_bps)
        )
        assert (
            adcp_app.collect_results(adcp_result.delivered)
            == adcp_app.expected_result()
        )

        rmt_app = ParameterServerApp(workers, VECTOR, elements_per_packet=1)
        rmt = RMTSwitch(bench_rmt_config, rmt_app)
        rmt_result = rmt.run(rmt_app.workload(bench_rmt_config.port_speed_bps))
        assert (
            rmt_app.collect_results(rmt_result.delivered)
            == rmt_app.expected_result()
        )
        rows[width] = (
            adcp_result.duration_s,
            rmt_result.duration_s,
            rmt_result.recirculated_wire_bytes,
        )
    return rows


def test_ablation_advantage_grows_with_coflow_width(
    benchmark, bench_rmt_config, bench_adcp_config
):
    rows = benchmark(_sweep, bench_rmt_config, bench_adcp_config)

    lines = [f"{'workers':>7} {'ADCP CCT':>10} {'RMT CCT':>10} "
             f"{'ratio':>6} {'recirc bytes':>12}"]
    for width, (adcp_cct, rmt_cct, recirc) in rows.items():
        lines.append(
            f"{width:>7} {adcp_cct * 1e9:>8.0f}ns {rmt_cct * 1e9:>8.0f}ns "
            f"{rmt_cct / adcp_cct:>5.1f}x {recirc:>12}"
        )
    report("Ablation: coflow width vs architecture gap", lines)

    ratios = {w: rmt / adcp for w, (adcp, rmt, _) in rows.items()}
    # The gap exists at every width, widens with it, and the
    # recirculation bill never shrinks as the coflow's footprint grows.
    assert all(ratio > 1.5 for ratio in ratios.values())
    ordered = [ratios[w] for w in sorted(ratios)]
    assert ordered == sorted(ordered)
    recirc_bytes = [rows[w][2] for w in sorted(rows)]
    assert recirc_bytes == sorted(recirc_bytes)
    # Wider coflows pay RMT more in absolute terms.
    rmt_ccts = [rows[w][1] for w in sorted(rows)]
    assert rmt_ccts == sorted(rmt_ccts)
