"""Experiment A6 — section 4's whole-chip feasibility argument.

"A significant portion of the ADCP architectural elements can run on a
clock frequency that is a fraction of what RMT chips use today ... it can
lower the power requirements of the resulting chip.  Lower frequency can
also translate into using potentially smaller gates and, therefore,
improving the area requirements."

Composed chip budgets at equal 12.8 Tbps throughput and equal per-stage
memory: the ADCP pays pipeline *count* (area) and buys back dynamic power
and per-instance logic area via its slower clocks.
"""

from __future__ import annotations

import pytest

from benchlib import report
from repro.adcp.config import ADCPConfig
from repro.feasibility.chip import ChipModel
from repro.rmt.config import RMTConfig
from repro.units import GBPS, GHZ


def _designs():
    rmt = RMTConfig(
        num_ports=32, port_speed_bps=400 * GBPS, pipelines=4,
        min_wire_packet_bytes=247.0, frequency_hz=1.62 * GHZ,
    )
    adcp = ADCPConfig(
        num_ports=32, port_speed_bps=400 * GBPS, demux_factor=2,
        central_pipelines=8, array_width=8,
    )
    return rmt, adcp


def test_sec4_chip_budget_comparison(benchmark):
    def compose():
        model = ChipModel()
        rmt_config, adcp_config = _designs()
        return model.rmt_chip(rmt_config), model.adcp_chip(adcp_config)

    rmt, adcp = benchmark(compose)

    report(
        "Section 4: whole-chip budgets at 12.8 Tbps, equal per-stage memory",
        [
            f"{'':>6} {'area':>10} {'logic':>9} {'dynamic':>9} {'total pwr':>9}",
            f"{'RMT':>6} {rmt.total_mm2:>8.0f}mm2 {rmt.logic_mm2:>7.0f}mm2 "
            f"{rmt.dynamic_w:>8.1f}W {rmt.total_w:>8.1f}W",
            f"{'ADCP':>6} {adcp.total_mm2:>8.0f}mm2 {adcp.logic_mm2:>7.0f}mm2 "
            f"{adcp.dynamic_w:>8.1f}W {adcp.total_w:>8.1f}W",
            f"dynamic power density: RMT "
            f"{rmt.dynamic_w / rmt.logic_mm2:.2f} vs ADCP "
            f"{adcp.dynamic_w / adcp.logic_mm2:.2f} W/mm2 of logic",
        ],
    )
    # The trade as the paper frames it: more instances (area up), much
    # lower switching energy per unit of logic (clock + voltage down).
    assert adcp.total_mm2 > rmt.total_mm2
    assert adcp.dynamic_w / adcp.logic_mm2 < 0.5 * rmt.dynamic_w / rmt.logic_mm2


def test_sec4_lane_logic_shrinks_with_clock(benchmark):
    """Gate-sizing relief: one ADCP lane's logic is smaller than one RMT
    pipeline's, despite identical stage/MAU counts."""

    def lane_vs_pipeline():
        model = ChipModel()
        rmt_config, adcp_config = _designs()
        rmt_budget = model.rmt_chip(rmt_config)
        adcp_budget = model.adcp_chip(adcp_config)
        return (
            rmt_budget.block("ingress0").logic_mm2,
            adcp_budget.block("ingress0").logic_mm2,
        )

    rmt_logic, lane_logic = benchmark(lane_vs_pipeline)
    report(
        "Section 4: per-instance logic area",
        [
            f"RMT pipeline @1.62 GHz: {rmt_logic:6.2f} mm2 of logic",
            f"ADCP lane   @demuxed:   {lane_logic:6.2f} mm2 of logic",
        ],
    )
    assert lane_logic < rmt_logic


def test_sec4_power_vs_demux_factor(benchmark):
    """Sweep the demux factor: total dynamic power falls as lanes slow
    down, until leakage of the extra instances dominates — the design
    window the paper gestures at."""

    def sweep():
        model = ChipModel()
        budgets = {}
        for m in (1, 2, 4):
            config = ADCPConfig(
                num_ports=32, port_speed_bps=400 * GBPS, demux_factor=m,
                central_pipelines=8, array_width=8,
            )
            budget = model.adcp_chip(config)
            budgets[m] = (budget.dynamic_w, budget.leakage_w, budget.total_mm2)
        return budgets

    budgets = benchmark(sweep)
    report(
        "Section 4: ADCP chip vs demux factor (32 x 400 G)",
        [
            f"1:{m} -> dynamic {dyn:7.1f} W, leakage {leak:7.1f} W, "
            f"area {area:6.0f} mm2"
            for m, (dyn, leak, area) in budgets.items()
        ],
    )
    # Dynamic power per lane falls faster than lane count rises.
    assert budgets[2][0] < budgets[1][0]
    # But area and leakage grow monotonically: the trade is real.
    areas = [budgets[m][2] for m in (1, 2, 4)]
    assert areas == sorted(areas)
