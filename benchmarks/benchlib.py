"""Report helper shared by the benchmark modules.

Besides the printed tables, :func:`report` optionally collects
machine-readable rows: pass ``data=`` (any JSON-serializable value) and
the record is appended to an in-process collection that
:func:`write_artifact` dumps as one JSON document.  Setting the
``REPRO_BENCH_JSON`` environment variable to a path makes every
``report(..., data=...)`` call rewrite that artifact incrementally, so a
benchmark session killed halfway still leaves the completed records on
disk.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

_records: list[dict] = []


def report(title: str, rows: list[str], data=None) -> None:
    """Print one regenerated artifact as an aligned block.

    Run pytest with ``-s`` (or read captured stdout) to see the
    paper-vs-measured tables these produce.  When ``data`` is given, the
    same result is also collected as ``{"title": ..., "data": ...}`` for
    the JSON artifact (see module docstring).
    """
    print()
    print(f"== {title} ==")
    for row in rows:
        print(f"   {row}")
    if data is not None:
        _records.append({"title": title, "data": data})
        env_path = os.environ.get("REPRO_BENCH_JSON")
        if env_path:
            write_artifact(env_path)


def records() -> list[dict]:
    """The machine-readable records collected so far (in call order)."""
    return list(_records)


def write_artifact(path: str | Path) -> Path:
    """Write every collected record as one JSON document.

    The write is atomic (temp file in the target directory, then
    ``os.replace``) so parallel benchmark workers and campaign cells
    rewriting the same artifact can never interleave partial JSON.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps({"reports": _records}, indent=1))
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target
