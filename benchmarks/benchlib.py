"""Report helper shared by the benchmark modules."""

from __future__ import annotations


def report(title: str, rows: list[str]) -> None:
    """Print one regenerated artifact as an aligned block.

    Run pytest with ``-s`` (or read captured stdout) to see the
    paper-vs-measured tables these produce.
    """
    print()
    print(f"== {title} ==")
    for row in rows:
        print(f"   {row}")
