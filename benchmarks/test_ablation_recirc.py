"""Experiment A7 — ablation: provisioning RMT's recirculation escape hatch.

If recirculation is RMT's answer to coflows (Figure 2), can a deployment
simply buy its way out with more loopback bandwidth?  Sweep the
recirculation ports per pipeline and measure the aggregation coflow's
CCT and the residual gap to the ADCP: extra loopback bandwidth shaves the
queueing component of the tax but cannot remove the extra passes, so the
gap never closes.
"""

from __future__ import annotations

import dataclasses

import pytest

from benchlib import report
from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp
from repro.rmt.config import StateMode
from repro.rmt.switch import RMTSwitch


WORKERS = [0, 1, 4, 5]
VECTOR = 128


def _sweep(bench_rmt_config, bench_adcp_config):
    adcp_app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16)
    adcp = ADCPSwitch(bench_adcp_config, adcp_app)
    adcp_cct = adcp.run(
        adcp_app.workload(bench_adcp_config.port_speed_bps)
    ).duration_s

    rows = {}
    for ports in (1, 2, 4, 8):
        config = dataclasses.replace(
            bench_rmt_config,
            state_mode=StateMode.RECIRCULATE,
            recirculation_ports_per_pipeline=ports,
        )
        app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1)
        switch = RMTSwitch(config, app)
        result = switch.run(app.workload(config.port_speed_bps))
        assert app.collect_results(result.delivered) == app.expected_result()
        rows[ports] = (result.duration_s, result.recirculated_packets)
    return adcp_cct, rows


def test_ablation_recirc_bandwidth_cannot_close_the_gap(
    benchmark, bench_rmt_config, bench_adcp_config
):
    adcp_cct, rows = benchmark(_sweep, bench_rmt_config, bench_adcp_config)

    lines = [f"ADCP reference CCT: {adcp_cct * 1e9:.0f} ns"]
    for ports, (cct, recirc) in rows.items():
        lines.append(
            f"RMT recirc x{ports}: CCT {cct * 1e9:7.0f} ns "
            f"({cct / adcp_cct:4.1f}x ADCP), {recirc} loops"
        )
    report("Ablation: recirculation bandwidth provisioning", lines)

    ccts = [rows[p][0] for p in (1, 2, 4, 8)]
    # More loopback bandwidth helps monotonically (or is neutral)...
    assert all(b <= a * 1.001 for a, b in zip(ccts, ccts[1:]))
    # ...but even 8x provisioning never reaches the ADCP: the extra
    # passes and the scalar format stay.
    assert min(ccts) > 1.5 * adcp_cct
    # The loop count is structural, independent of bandwidth.
    loop_counts = {rows[p][1] for p in (1, 2, 4, 8)}
    assert len(loop_counts) == 1
