#!/usr/bin/env python3
"""Streaming sort-merge join through TM1's order-preserving merge (§3.1).

Two database servers stream sorted relations at the switch; TM1 merges
the flows in key order, and the central partitions join matching keys
with tiny, bounded state — a query operator that is impossible on a
classic FIFO traffic manager without buffering a whole relation.

Run:
    python examples/sorted_merge_join.py
"""

from __future__ import annotations

from repro import ADCPConfig, ADCPSwitch
from repro.apps import SortMergeJoinApp
from repro.sim.rng import make_rng
from repro.units import GBPS


def make_relation(rng, rows: int, key_space: int) -> list[tuple[int, int]]:
    keys = rng.integers(0, key_space, size=rows)
    values = rng.integers(0, 1000, size=rows)
    return sorted((int(k), int(v)) for k, v in zip(keys, values))


def main() -> None:
    rng = make_rng(7)
    left = make_relation(rng, rows=300, key_space=150)
    right = make_relation(rng, rows=300, key_space=150)

    app = SortMergeJoinApp(left_port=0, right_port=1, output_port=7)
    config = ADCPConfig(
        num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
        central_pipelines=4,
    )
    switch = ADCPSwitch(config, app, ordered_flows=app.ordered_flows())
    result = switch.run(app.workload(config.port_speed_bps, left, right))

    got = app.collect_matches(result.delivered)
    expected = app.expected_join(left, right)
    assert got == expected, "join mismatch"

    print(f"SELECT * FROM left JOIN right USING (key)")
    print(f"  left: {len(left)} rows, right: {len(right)} rows")
    print(f"  matches: {len(got)} (verified against ground truth)")
    print(f"  switch state high-water mark: {app.max_buffered_values} "
          f"buffered values")
    print(f"  join time: {result.duration_s * 1e6:.2f} us at 100 G")
    print()
    print("a FIFO TM would force the switch to buffer an entire relation;")
    print("TM1's k-way merge keeps state bounded by per-key duplicates.")


if __name__ == "__main__":
    main()
