#!/usr/bin/env python3
"""ML training parameter aggregation (Table 1, row 1) in depth.

Simulates several all-reduce rounds of a distributed training job through
the ADCP and sweeps the array width to show the key-rate scaling of
section 3.2: the same gradient vector ships in 16x fewer packets at
16-wide packing, and the central pipelines retire 16 weights per cycle.

Run:
    python examples/ml_aggregation.py
"""

from __future__ import annotations

from repro import ADCPConfig, ADCPSwitch
from repro.apps import ParameterServerApp
from repro.coflow.metrics import goodput_fraction
from repro.units import GBPS

WORKERS = [0, 1, 2, 3, 4, 5, 6, 7]
GRADIENT = 2048  # weights per round


def run_round(width: int, round_: int) -> dict:
    """One all-reduce round at a given packing width."""
    config = ADCPConfig(
        num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
        central_pipelines=4,
    )
    # Values model gradients: worker contribution = key + round (identity
    # check stays easy: aggregate = workers * (key + round)).
    app = ParameterServerApp(WORKERS, GRADIENT, elements_per_packet=width)
    switch = ADCPSwitch(config, app)
    value_fn = lambda key: key + round_
    result = switch.run(app.workload(config.port_speed_bps, value_fn=value_fn))

    got = app.collect_results(result.delivered)
    expected = app.expected_result(value_fn)
    assert got == expected, "aggregation mismatch"

    input_packets = sum(1 for _ in app.workload(config.port_speed_bps))
    central_packets = sum(
        switch.stats.value(f"{c.path}.packets") for c in switch.central
    )
    central_elements = sum(
        switch.stats.value(f"{c.path}.elements") for c in switch.central
    )
    workload_packets = [p for _, p in app.workload(config.port_speed_bps)]
    return {
        "width": width,
        "cct_ns": result.duration_s * 1e9,
        "input_packets": input_packets,
        "keys_per_cycle": central_elements / central_packets,
        "goodput": goodput_fraction(workload_packets),
    }


def main() -> None:
    print(f"all-reduce: {len(WORKERS)} workers x {GRADIENT} weights, 100 G ports")
    print()
    print(f"{'width':>5} {'packets':>8} {'goodput':>8} {'keys/cycle':>10} {'CCT':>10}")
    rows = []
    for width in (1, 2, 4, 8, 16):
        row = run_round(width, round_=0)
        rows.append(row)
        print(
            f"{row['width']:>5} {row['input_packets']:>8} "
            f"{row['goodput']:>7.1%} {row['keys_per_cycle']:>10.1f} "
            f"{row['cct_ns']:>8.0f} ns"
        )
    speedup = rows[0]["cct_ns"] / rows[-1]["cct_ns"]
    print()
    print(f"16-wide arrays finish a round {speedup:.1f}x faster end-to-end")
    print("(pipeline-level key rate scales the full 16x; the end-to-end")
    print(" factor is bounded by the goodput ratio of the wire format).")

    print()
    print("multi-round training (16-wide):")
    for round_ in range(3):
        row = run_round(16, round_)
        print(f"  round {round_}: CCT {row['cct_ns']:8.0f} ns, "
              f"aggregation verified")


if __name__ == "__main__":
    main()
