#!/usr/bin/env python3
"""Database analytics: filter-aggregate-reshuffle (Table 1, row 2).

Models a parallel GROUP BY query: mapper servers stream (group, value)
tuples; the switch filters on a predicate, keeps running per-group sums in
its global partitioned area, and reshuffles each group's total to the
reducer that owns it.  Compares ADCP against RMT on the same query.

Run:
    python examples/database_analytics.py
"""

from __future__ import annotations

from repro import ADCPConfig, ADCPSwitch, RMTConfig, RMTSwitch
from repro.apps import DBShuffleApp
from repro.units import GBPS

MAPPERS = [0, 1, 2]
REDUCERS = [5, 6, 7]
GROUPS = 64
ROWS_PER_MAPPER = 960


def run_query(target: str) -> tuple[float, dict[int, int], int]:
    # The predicate keeps values divisible by 3 (a selectivity-1/3 filter
    # when the value function below cycles through residues).
    value_fn = lambda key, mapper: key + mapper

    if target == "adcp":
        config = ADCPConfig(
            num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
            central_pipelines=4,
        )
        app = DBShuffleApp(
            MAPPERS, REDUCERS, GROUPS, filter_modulus=3, elements_per_packet=16
        )
        switch = ADCPSwitch(config, app)
    else:
        config = RMTConfig(
            num_ports=8, pipelines=2, port_speed_bps=100 * GBPS,
            min_wire_packet_bytes=84.0, frequency_hz=1.25e9,
        )
        app = DBShuffleApp(
            MAPPERS, REDUCERS, GROUPS, filter_modulus=3, elements_per_packet=1
        )
        switch = RMTSwitch(config, app)

    result = switch.run(
        app.workload(config.port_speed_bps, ROWS_PER_MAPPER, value_fn=value_fn)
    )
    got = app.collect_results(result.delivered)
    expected = app.expected_result(ROWS_PER_MAPPER, value_fn)
    assert got == expected, "query result mismatch"
    return result.duration_s, got, app.filtered_elements


def main() -> None:
    print(
        f"query: SELECT group, SUM(value) FROM rows WHERE value % 3 = 0 "
        f"GROUP BY group"
    )
    print(f"{len(MAPPERS)} mappers x {ROWS_PER_MAPPER} rows, {GROUPS} groups, "
          f"{len(REDUCERS)} reducers")
    print()

    adcp_time, totals, filtered = run_query("adcp")
    print(f"ADCP: query time {adcp_time * 1e6:7.2f} us, "
          f"{filtered} rows filtered in-switch")
    rmt_time, rmt_totals, _ = run_query("rmt")
    print(f"RMT:  query time {rmt_time * 1e6:7.2f} us (scalar packets, "
          f"pinned state)")
    assert totals == rmt_totals
    print(f"\nsame {len(totals)} group totals from both targets; "
          f"ADCP is {rmt_time / adcp_time:.1f}x faster")

    sample = dict(sorted(totals.items())[:5])
    print(f"first groups: {sample}")


if __name__ == "__main__":
    main()
