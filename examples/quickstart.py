#!/usr/bin/env python3
"""Quickstart: one coflow, two switch architectures.

Builds a small RMT switch and a small ADCP switch, runs the same
parameter-aggregation coflow through both, and prints what the paper's
argument predicts: identical answers, very different costs.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ADCPConfig, ADCPSwitch, RMTConfig, RMTSwitch
from repro.apps import ParameterServerApp
from repro.units import GBPS

WORKER_PORTS = [0, 1, 4, 5]  # deliberately straddles RMT pipelines
VECTOR = 256                 # weights per worker


def run_adcp() -> None:
    print("--- ADCP (16-wide arrays, global partitioned area) ---")
    config = ADCPConfig(
        num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
        central_pipelines=4,
    )
    app = ParameterServerApp(WORKER_PORTS, VECTOR, elements_per_packet=16)
    switch = ADCPSwitch(config, app)
    result = switch.run(app.workload(config.port_speed_bps))

    assert app.collect_results(result.delivered) == app.expected_result()
    print(f"  aggregation correct over {VECTOR} weights x {len(WORKER_PORTS)} workers")
    print(f"  coflow completion time: {result.duration_s * 1e9:8.0f} ns")
    print(f"  recirculated packets:   {result.recirculated_packets}")
    print(f"  TM1 placement:          {switch.tm1.partition_histogram()}")
    return result.duration_s


def run_rmt() -> None:
    print("--- RMT (scalar packets, egress-pinned state) ---")
    config = RMTConfig(
        num_ports=8, pipelines=2, port_speed_bps=100 * GBPS,
        min_wire_packet_bytes=84.0, frequency_hz=1.25e9,
    )
    # Stateful processing on RMT forces one element per packet (the
    # switch refuses wider formats at compile time).
    app = ParameterServerApp(WORKER_PORTS, VECTOR, elements_per_packet=1)
    switch = RMTSwitch(config, app)
    result = switch.run(app.workload(config.port_speed_bps))

    assert app.collect_results(result.delivered) == app.expected_result()
    print(f"  aggregation correct over {VECTOR} weights x {len(WORKER_PORTS)} workers")
    print(f"  coflow completion time: {result.duration_s * 1e9:8.0f} ns")
    print(f"  recirculated packets:   {result.recirculated_packets}")
    print(f"  recirculated bytes:     {result.recirculated_wire_bytes}")
    return result.duration_s


def main() -> None:
    adcp_cct = run_adcp()
    print()
    rmt_cct = run_rmt()
    print()
    print(f"ADCP finishes the coflow {rmt_cct / adcp_cct:.1f}x faster, "
          f"with zero recirculation.")


if __name__ == "__main__":
    main()
