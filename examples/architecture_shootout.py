#!/usr/bin/env python3
"""Architecture shootout: software vs threaded vs RMT vs ADCP.

The paper's opening tension (§1), live: the same parameter-aggregation
coflow on all four switch designs.  Expressive designs give up line rate;
the line-rate design gives up the programming model; the ADCP claims
both for coflow programs.

Run:
    python examples/architecture_shootout.py
"""

from __future__ import annotations

from repro import ADCPConfig, ADCPSwitch, RMTConfig, RMTSwitch
from repro.apps import ParameterServerApp
from repro.baselines import RtcConfig, RunToCompletionSwitch, ThreadedSwitch
from repro.net.traffic import make_coflow_packet
from repro.units import GBPS

WORKERS = [0, 1, 4, 5]
VECTOR = 256


def build(design: str):
    if design == "software":
        app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16)
        return RunToCompletionSwitch(RtcConfig(), app), app
    if design == "threaded":
        app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16)
        return ThreadedSwitch(app=app), app
    if design == "rmt":
        app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1)
        config = RMTConfig(
            num_ports=8, pipelines=2, port_speed_bps=100 * GBPS,
            min_wire_packet_bytes=84.0, frequency_hz=1.25e9,
        )
        return RMTSwitch(config, app), app
    app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16)
    config = ADCPConfig(
        num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
        central_pipelines=4,
    )
    return ADCPSwitch(config, app), app


def main() -> None:
    sample = make_coflow_packet(1, 0, 0, [(1, 1)])
    print(f"{'design':>9} {'elems/pkt':>9} {'CCT':>10} {'recirc':>7} "
          f"{'pkt ceiling':>12}")
    for design in ("software", "threaded", "rmt", "adcp"):
        switch, app = build(design)
        result = switch.run(app.workload(100 * GBPS))
        assert app.collect_results(result.delivered) == app.expected_result()
        if hasattr(switch, "sustained_pps"):
            ceiling = f"{switch.sustained_pps(sample) / 1e6:7.0f} Mpps"
        else:
            ceiling = "line rate"
        print(
            f"{design:>9} {app.elements_per_packet:>9} "
            f"{result.duration_s * 1e9:>8.0f} ns "
            f"{result.recirculated_packets:>7} {ceiling:>12}"
        )
    print()
    print("all four designs computed the identical aggregate; only the ADCP")
    print("combines line-rate packet budgets with the wide coflow program.")


if __name__ == "__main__":
    main()
