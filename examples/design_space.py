#!/usr/bin/env python3
"""The switch-design space: Tables 2 and 3, the feasibility frontier, and
the section 4 physical-design models, all in one report.

Run:
    python examples/design_space.py
"""

from __future__ import annotations

from repro.adcp.multiclock import BankedMatMemory, MultiClockMatMemory
from repro.analytical.frontier import (
    demux_frontier,
    mux_frontier,
    required_demux_factor,
)
from repro.analytical.scaling import table2_rows, table3_rows
from repro.feasibility.area import AreaModel
from repro.feasibility.congestion import (
    RoutingEstimator,
    tm_netlist_interleaved,
    tm_netlist_monolithic,
)
from repro.feasibility.floorplan import (
    interleaved_tm_floorplan,
    monolithic_tm_floorplan,
)
from repro.feasibility.power import PowerModel
from repro.units import GHZ


def print_table2() -> None:
    print("Table 2 — port multiplexing poor scalability (model vs paper)")
    print(f"  {'port':>6} {'p/pipe':>6} {'minpkt':>7} {'paper':>6} {'model':>7}")
    for row in table2_rows():
        print(
            f"  {row.port_speed_gbps:>4.0f} G {str(row.ports_per_pipeline):>6} "
            f"{row.min_packet_bytes:>6.0f}B {row.paper_freq_ghz:>5.2f}G "
            f"{row.computed_freq_ghz:>6.3f}G"
        )


def print_table3() -> None:
    print("Table 3 — port demultiplexing examples (model vs paper)")
    print(f"  {'port':>6} {'p/pipe':>6} {'minpkt':>7} {'paper':>6} {'model':>7}")
    for row in table3_rows():
        print(
            f"  {row.port_speed_gbps:>4.0f} G {str(row.ports_per_pipeline):>6} "
            f"{row.min_packet_bytes:>6.0f}B {row.paper_freq_ghz:>5.2f}G "
            f"{row.computed_freq_ghz:>6.3f}G"
        )


def print_frontier() -> None:
    print("Feasibility frontier — minimum-packet tax (mux) vs clock relief (demux)")
    for speed in (400, 800, 1600, 3200):
        best_mux = min(
            (p for p in mux_frontier(speed) if p.ports_per_pipeline >= 1),
            key=lambda p: p.min_wire_packet_bytes,
        )
        m = required_demux_factor(speed)
        demux = next(p for p in demux_frontier(speed, (m,)))
        print(
            f"  {speed:>5} G: mux needs {best_mux.min_wire_packet_bytes:4.0f} B "
            f"min packets; demux 1:{m} runs 84 B at {demux.freq_ghz:4.2f} GHz"
        )


def print_power_area() -> None:
    print("Section 4 — area and power at the two design points")
    area = AreaModel()
    power = PowerModel()
    rmt = area.pipeline_area("rmt", 12, 16, 10, 2, 1.62 * GHZ)
    lane = area.pipeline_area("lane", 12, 16, 10, 2, 0.60 * GHZ)
    print(f"  RMT pipeline @1.62 GHz: {rmt.total_mm2:6.1f} mm^2 "
          f"({rmt.logic_mm2:.1f} logic)")
    print(f"  ADCP lane    @0.60 GHz: {lane.total_mm2:6.1f} mm^2 "
          f"({lane.logic_mm2:.1f} logic)")
    ratio = power.dynamic_power_w(rmt.logic_mm2, 1.62 * GHZ) / power.dynamic_power_w(
        lane.logic_mm2, 0.60 * GHZ
    )
    print(f"  dynamic power per pipeline: RMT burns {ratio:.1f}x an ADCP lane")


def print_congestion() -> None:
    print("Section 4 — TM routing congestion (8 pipelines, 512-wire buses)")
    mono = RoutingEstimator(monolithic_tm_floorplan(8)).estimate(
        tm_netlist_monolithic(8, 512)
    )
    inter = RoutingEstimator(interleaved_tm_floorplan(8)).estimate(
        tm_netlist_interleaved(8, 512)
    )
    print(f"  monolithic TM: peak g-cell congestion {mono.max_congestion:5.1f}")
    print(f"  interleaved TM: peak g-cell congestion {inter.max_congestion:5.1f} "
          f"({mono.max_congestion / inter.max_congestion:.1f}x relief)")


def print_multiclock() -> None:
    print("Section 4 — array MAT memory designs at a 0.6 GHz lane")
    for width in (2, 4, 8, 16):
        multi = MultiClockMatMemory(0.6 * GHZ, width)
        banked = BankedMatMemory(0.6 * GHZ, width)
        status = "ok" if multi.is_feasible else "infeasible"
        print(
            f"  width {width:>2}: multi-clock memory at "
            f"{multi.memory_frequency_hz / GHZ:4.1f} GHz ({status}); "
            f"banked always buildable at {banked.area_factor():.2f}x area"
        )


def main() -> None:
    for section in (
        print_table2,
        print_table3,
        print_frontier,
        print_power_area,
        print_congestion,
        print_multiclock,
    ):
        section()
        print()


if __name__ == "__main__":
    main()
