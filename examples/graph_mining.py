#!/usr/bin/env python3
"""Graph pattern mining: BSP frontier deduplication (Table 1, row 3).

Graph partitions explore patterns in supersteps; each superstep floods
newly discovered frontier vertices to their owning partitions, with heavy
duplication (many partitions discover the same vertex).  The switch's
global area holds a visited bitmap and forwards each vertex at most once,
absorbing duplicate announcements in flight.

Run:
    python examples/graph_mining.py
"""

from __future__ import annotations

from repro import ADCPConfig, ADCPSwitch
from repro.apps import GraphMiningApp
from repro.sim.rng import make_rng
from repro.units import GBPS

PARTITIONS = [0, 1, 2, 3]
VERTICES = 4096


def main() -> None:
    config = ADCPConfig(
        num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
        central_pipelines=4,
    )
    rng = make_rng(42)
    print(f"graph of {VERTICES} vertices over {len(PARTITIONS)} partitions")
    print(f"{'round':>5} {'frontier':>8} {'announced':>9} {'forwarded':>9} "
          f"{'absorbed':>8} {'saved':>6}")

    frontier = 64
    total_saved_bytes = 0
    for round_ in range(5):
        # Duplication grows with the frontier (denser patterns repeat
        # vertices across partitions), as the BSP workloads in Table 1 do.
        duplication = 1.0 + 0.5 * round_
        app = GraphMiningApp(PARTITIONS, VERTICES, elements_per_packet=16)
        switch = ADCPSwitch(config, app)
        result = switch.run(
            app.superstep_workload(
                config.port_speed_bps, frontier, duplication, rng
            )
        )
        announced = app.uniques_forwarded + app.duplicates_absorbed
        forwarded = app.uniques_forwarded
        saved_fraction = app.duplicates_absorbed / announced
        total_saved_bytes += app.duplicates_absorbed * 8
        print(
            f"{round_:>5} {frontier:>8} {announced:>9} {forwarded:>9} "
            f"{app.duplicates_absorbed:>8} {saved_fraction:>5.0%}"
        )
        assert len(app.collect_forwarded(result.delivered)) == forwarded
        frontier = min(int(frontier * 1.8), VERTICES // 4)

    print()
    print(f"server fan-in bandwidth saved by in-switch dedup: "
          f"~{total_saved_bytes} payload bytes across 5 rounds")


if __name__ == "__main__":
    main()
