#!/usr/bin/env python3
"""In-network key/value caching under a skewed workload (NetCache-style).

The switch caches the hottest items of a storage server.  A Zipf request
stream hits the cache for popular keys and falls through to the server
otherwise — the load absorbed by the switch is the fraction the server
never sees.

Run:
    python examples/kv_cache_demo.py
"""

from __future__ import annotations

from repro import ADCPConfig, ADCPSwitch
from repro.apps import KVCacheApp
from repro.apps.base import OP_GET, OP_REPLY
from repro.sim.rng import make_rng
from repro.units import GBPS

SERVER_PORT = 7
CLIENTS = [0, 1, 2, 3]


def run(cache_size: int, requests: int = 2000) -> tuple[float, int, int]:
    config = ADCPConfig(
        num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
        central_pipelines=4,
    )
    hot_items = {key: key * 7 + 1 for key in range(cache_size)}
    app = KVCacheApp(SERVER_PORT, CLIENTS, hot_items, elements_per_packet=1)
    switch = ADCPSwitch(config, app)

    stream = app.request_stream(requests, make_rng(3), zipf_s=1.2, key_space=8192)
    from repro.net.traffic import DeterministicSource, merge_sources

    per_client: dict[int, list] = {}
    for packet in stream:
        per_client.setdefault(packet.meta.ingress_port, []).append(packet)
    sources = [
        DeterministicSource(port, config.port_speed_bps, packets)
        for port, packets in per_client.items()
    ]
    result = switch.run(merge_sources(sources))

    replies = sum(
        1 for p in result.delivered
        if p.header("coflow")["opcode"] == OP_REPLY
    )
    to_server = sum(
        1 for p in result.delivered
        if p.header("coflow")["opcode"] == OP_GET
        and p.meta.egress_port == SERVER_PORT
    )
    return app.hit_rate, replies, to_server


def main() -> None:
    print("Zipf(1.2) GET stream over 8192 keys, 4 clients, one server")
    print(f"{'cache':>6} {'hit rate':>8} {'answered by switch':>18} "
          f"{'reached server':>14}")
    for cache_size in (16, 64, 256, 1024):
        hit_rate, replies, to_server = run(cache_size)
        print(f"{cache_size:>6} {hit_rate:>7.1%} {replies:>18} {to_server:>14}")
    print()
    print("a few hundred switch-resident items absorb most of a skewed load")
    print("— the hash table that, per section 2, RMT can only build with")
    print("scalar packets.")


if __name__ == "__main__":
    main()
