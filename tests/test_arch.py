"""Tests for the architecture-neutral layer (repro.arch)."""

from __future__ import annotations

import pytest

from repro.arch.app import SwitchApp
from repro.arch.decision import Decision, Verdict
from repro.arch.port import TxPort
from repro.errors import ConfigError
from repro.net.traffic import make_coflow_packet
from repro.units import BITS_PER_BYTE, GBPS


class TestDecision:
    def test_factories(self):
        assert Decision.forward().verdict is Verdict.FORWARD
        assert Decision.drop("x").drop_reason == "x"
        assert Decision.consume().verdict is Verdict.CONSUME
        assert Decision.recirculate().verdict is Verdict.RECIRCULATE

    def test_emissions_attached(self):
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        packet.meta.egress_port = 3
        decision = Decision.consume(packet)
        assert decision.emissions == [packet]

    def test_validate_requires_egress_port(self):
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        decision = Decision.forward(packet)
        with pytest.raises(ConfigError):
            decision.validate()
        packet.meta.egress_ports = (1, 2)
        decision.validate()  # multicast ports suffice


class TestTxPort:
    def test_wire_time(self):
        port = TxPort(0, 100 * GBPS)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        expected = packet.wire_bytes * BITS_PER_BYTE / (100 * GBPS)
        assert port.wire_time(packet) == pytest.approx(expected)

    def test_serialization_queues_behind_busy_port(self):
        port = TxPort(0, 100 * GBPS)
        a = make_coflow_packet(1, 0, 0, [(1, 1)])
        b = make_coflow_packet(1, 0, 1, [(1, 1)])
        dep_a = port.transmit(a, 0.0)
        dep_b = port.transmit(b, 0.0)  # ready at 0 but port busy
        assert dep_b == pytest.approx(dep_a + port.wire_time(b))

    def test_idle_gap_not_charged(self):
        port = TxPort(0, 100 * GBPS)
        a = make_coflow_packet(1, 0, 0, [(1, 1)])
        port.transmit(a, 0.0)
        b = make_coflow_packet(1, 0, 1, [(1, 1)])
        dep_b = port.transmit(b, 1.0)
        assert dep_b == pytest.approx(1.0 + port.wire_time(b))

    def test_stats_accumulate(self):
        port = TxPort(0, 100 * GBPS)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        port.transmit(packet, 0.0)
        assert port.packets_sent == 1
        assert port.wire_bytes_sent == packet.wire_bytes
        assert port.goodput_bytes_sent == packet.goodput_bytes
        assert port.achieved_bps > 0

    def test_utilization(self):
        port = TxPort(0, 100 * GBPS)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        port.transmit(packet, 0.0)
        horizon = port.wire_time(packet) * 2
        assert port.utilization(horizon) == pytest.approx(0.5)
        with pytest.raises(ConfigError):
            port.utilization(0)

    def test_departure_stamped_on_packet(self):
        port = TxPort(0, 100 * GBPS)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        departure = port.transmit(packet, 0.0)
        assert packet.meta.departure_time == departure

    def test_validation(self):
        with pytest.raises(ConfigError):
            TxPort(-1, GBPS)
        with pytest.raises(ConfigError):
            TxPort(0, 0)


class TestSwitchAppBase:
    def test_default_hooks_forward(self):
        app = SwitchApp("noop")
        assert app.ingress(None, None, None).verdict is Verdict.FORWARD
        assert app.central(None, None, None).verdict is Verdict.FORWARD
        assert app.egress(None, None, None).verdict is Verdict.FORWARD
        assert not app.uses_central_state()

    def test_default_placement_key_prefers_payload(self):
        app = SwitchApp("noop")
        packet = make_coflow_packet(9, 0, 0, [(42, 1)])
        assert app.placement_key(packet) == 42

    def test_default_placement_key_falls_back_to_coflow_id(self):
        from repro.net.headers import coflow_header, standard_stack
        from repro.net.packet import Packet

        app = SwitchApp("noop")
        packet = Packet(standard_stack() + [coflow_header(9, 0)])
        assert app.placement_key(packet) == 9

    def test_bind_placement_installs_hash_policy(self):
        app = SwitchApp("noop")
        app.bind_placement(4)
        assert app.placement_policy is not None
        assert 0 <= app.partition_of_key(123) < 4

    def test_partition_before_bind_rejected(self):
        with pytest.raises(ConfigError):
            SwitchApp("noop").partition_of_key(1)

    def test_invalid_elements_per_packet(self):
        with pytest.raises(ConfigError):
            SwitchApp("bad", elements_per_packet=0)
