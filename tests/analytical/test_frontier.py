"""Tests for feasibility-frontier sweeps (repro.analytical.frontier)."""

from __future__ import annotations

import pytest

from repro.analytical.frontier import (
    MAX_VIABLE_FREQ_GHZ,
    demux_frontier,
    mux_frontier,
    required_demux_factor,
    sweep_port_speeds,
)
from repro.errors import ConfigError
from repro.units import ETHERNET_MIN_WIRE_BYTES


class TestMuxFrontier:
    def test_all_points_respect_ceiling(self):
        for point in mux_frontier(1600):
            assert point.freq_ghz <= MAX_VIABLE_FREQ_GHZ + 1e-9

    def test_packet_size_tax_grows_with_multiplexing(self):
        points = {int(p.ports_per_pipeline): p for p in mux_frontier(400)}
        assert points[16].min_wire_packet_bytes > points[4].min_wire_packet_bytes

    def test_10g_era_keeps_honest_packets(self):
        """At 10G, even 64 ports per pipeline work with 84 B packets."""
        points = {int(p.ports_per_pipeline): p for p in mux_frontier(10)}
        assert points[64].honest_min_packet

    def test_800g_mux_cannot_keep_honest_packets(self):
        """At 800G, any *actual* multiplexing (>1 port/pipeline) forces
        inflated minimum packets; only the degenerate 1:1 case fits."""
        for point in mux_frontier(800):
            if point.ports_per_pipeline > 1:
                assert not point.honest_min_packet

    def test_validation(self):
        with pytest.raises(ConfigError):
            mux_frontier(0)


class TestDemuxFrontier:
    def test_frequency_halves_per_doubling(self):
        points = {p.demux_factor: p for p in demux_frontier(1600)}
        assert points[2].freq_ghz == pytest.approx(points[1].freq_ghz / 2)
        assert points[4].freq_ghz == pytest.approx(points[1].freq_ghz / 4)

    def test_all_points_honest(self):
        assert all(p.honest_min_packet for p in demux_frontier(800))

    def test_1600g_needs_demux_2(self):
        points = {p.demux_factor: p for p in demux_frontier(1600)}
        assert not points[1].viable  # 2.38 GHz
        assert points[2].viable     # 1.19 GHz

    def test_invalid_factor(self):
        with pytest.raises(ConfigError):
            demux_frontier(800, demux_factors=(0,))


class TestRequiredDemuxFactor:
    def test_paper_anchor_points(self):
        assert required_demux_factor(800) == 1  # 1.19 GHz fits already
        assert required_demux_factor(1600) == 2
        assert required_demux_factor(3200) == 4

    def test_slow_ports_need_no_demux(self):
        assert required_demux_factor(10) == 1
        assert required_demux_factor(100) == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            required_demux_factor(0)


class TestSweep:
    def test_structure(self):
        sweep = sweep_port_speeds((100, 800))
        assert set(sweep) == {100, 800}
        assert {"mux", "demux"} == set(sweep[100])
        assert all(p.min_wire_packet_bytes >= ETHERNET_MIN_WIRE_BYTES
                   for p in sweep[800]["mux"])
