"""Tests reproducing Tables 2 and 3 (repro.analytical.scaling)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analytical.scaling import (
    PAPER_TABLE2_ROWS,
    PAPER_TABLE3_ROWS,
    SwitchConfig,
    demux_config,
    min_packet_for_frequency,
    mux_config,
    table2_rows,
    table3_rows,
)
from repro.errors import ConfigError
from repro.units import GBPS, GHZ


class TestTable2Reproduction:
    def test_every_row_within_one_percent(self):
        """The model must reproduce every published Table 2 frequency."""
        for row in table2_rows():
            assert row.freq_error < 0.01, row

    def test_row_values_match_paper_exactly_when_exact(self):
        rows = table2_rows()
        # Row 2 (6.4 Tbps) is exact: 100G x 16 / (160 x 8) = 1.25 GHz.
        assert rows[1].computed_freq_ghz == pytest.approx(1.25)

    def test_min_packet_grows_with_throughput(self):
        """The unsustainable trend: the assumed minimum packet grows from
        84 B to 495 B across switch generations."""
        packets = [row.min_packet_bytes for row in PAPER_TABLE2_ROWS]
        assert packets == sorted(packets)
        assert packets[0] == 84
        assert packets[-1] == 495

    def test_ports_per_pipeline_shrinks(self):
        ports = [row.ports_per_pipeline for row in PAPER_TABLE2_ROWS]
        assert ports[0] == 64
        assert ports[-1] == 4


class TestTable3Reproduction:
    def test_every_row_within_one_percent(self):
        for row in table3_rows():
            assert row.freq_error < 0.01, row

    def test_demux_halves_clock_at_800g(self):
        """800 Gbps 1:2 demux runs at ~0.6 GHz with honest 84 B packets."""
        rows = table3_rows()
        assert rows[1].computed_freq_ghz == pytest.approx(0.595, abs=0.005)
        assert rows[1].min_packet_bytes == 84

    def test_demux_1600g_at_1_19ghz(self):
        rows = table3_rows()
        assert rows[3].computed_freq_ghz == pytest.approx(1.19, abs=0.01)

    def test_demux_rows_use_fractional_ports(self):
        assert PAPER_TABLE3_ROWS[1].ports_per_pipeline == Fraction(1, 2)


class TestSwitchConfig:
    def test_mux_config_row(self):
        config = mux_config(6.4e12, 100 * GBPS, 4, 160)
        assert config.num_ports == 64
        assert config.ports_per_pipeline == 16
        assert config.pipeline_frequency_hz == pytest.approx(1.25 * GHZ)
        assert config.demux_factor == 1
        assert config.total_packet_rate_pps == pytest.approx(5 * GHZ)

    def test_demux_config(self):
        config = demux_config(800 * GBPS, demux_factor=2, num_ports=64)
        assert config.ports_per_pipeline == Fraction(1, 2)
        assert config.pipelines == 128
        assert config.demux_factor == 2
        assert config.pipeline_frequency_hz == pytest.approx(0.595e9, rel=1e-3)

    def test_uneven_port_split_rejected(self):
        with pytest.raises(ConfigError):
            mux_config(6.4e12, 100 * GBPS, 5, 160)

    def test_sub_ethernet_packet_rejected(self):
        with pytest.raises(ConfigError):
            mux_config(640e9, 10 * GBPS, 1, 80)

    def test_invalid_demux_factor(self):
        with pytest.raises(ConfigError):
            demux_config(800 * GBPS, 0)


class TestMinPacketForFrequency:
    def test_recovers_table2_row3_packet(self):
        """8x400G under 1.62 GHz needs a ~247 B minimum packet."""
        packet = min_packet_for_frequency(400 * GBPS, 8, 1.62 * GHZ)
        assert packet == pytest.approx(247, abs=1)

    def test_recovers_495_for_800g(self):
        packet = min_packet_for_frequency(800 * GBPS, 8, 1.62 * GHZ)
        assert packet == pytest.approx(494, abs=2)

    def test_fraction_supported(self):
        packet = min_packet_for_frequency(800 * GBPS, Fraction(1, 2), 0.60 * GHZ)
        assert packet == pytest.approx(83.3, abs=1)

    def test_invalid_ceiling(self):
        with pytest.raises(ConfigError):
            min_packet_for_frequency(GBPS, 1, 0)
