"""Tests for the section 3.2 key-rate model (repro.analytical.keyrate)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytical.keyrate import KeyRateModel, rmt_key_rate_ceiling
from repro.errors import ConfigError


class TestKeyRateModel:
    def test_scalar_rate_equals_packet_rate(self):
        model = KeyRateModel(packet_rate_pps=6e9)
        assert model.key_rate(1) == pytest.approx(6e9)

    def test_sixteen_wide_gives_16x(self):
        """Section 3.2: '8- or 16-wide array processing ... one order of
        magnitude' — with no bandwidth cap the gain is exactly the width."""
        model = KeyRateModel(packet_rate_pps=6e9)
        assert model.speedup(16) == pytest.approx(16.0)
        assert model.speedup(8) == pytest.approx(8.0)

    def test_bandwidth_cap_limits_large_packets(self):
        """With a finite link, very wide packets become bandwidth-bound and
        the speedup saturates below the packing factor."""
        model = KeyRateModel(packet_rate_pps=6e9, link_bps=12.8e12)
        unbounded = KeyRateModel(packet_rate_pps=6e9)
        assert model.key_rate(64) < unbounded.key_rate(64)
        # But small packets are pps-bound, not bandwidth-bound.
        assert model.key_rate(1) == unbounded.key_rate(1)

    def test_goodput_improves_with_packing(self):
        model = KeyRateModel(packet_rate_pps=6e9)
        assert model.goodput(16) > model.goodput(1) * 4

    def test_frame_floor_at_64_bytes(self):
        model = KeyRateModel(packet_rate_pps=1e9, header_bytes=20, element_width_bytes=4)
        assert model.frame_bytes(1) == 64

    def test_validation(self):
        with pytest.raises(ConfigError):
            KeyRateModel(packet_rate_pps=0)
        model = KeyRateModel(packet_rate_pps=1e9)
        with pytest.raises(ConfigError):
            model.key_rate(0)

    @given(st.integers(min_value=1, max_value=64))
    def test_key_rate_monotone_in_packing(self, width):
        """More elements per packet never hurts key rate (pps budget
        fixed, bandwidth-capped or not)."""
        model = KeyRateModel(packet_rate_pps=6e9, link_bps=12.8e12)
        assert model.key_rate(width + 1) >= model.key_rate(width) * 0.999


class TestRmtCeiling:
    def test_headline_numbers(self):
        """'Any application logic ... will be capped at 6 Bops/s' and
        'misses a potential 16x performance boost'."""
        ceiling = rmt_key_rate_ceiling()
        assert ceiling["scalar_ops_per_s"] == pytest.approx(6e9)
        assert ceiling["missed_factor"] == 16.0
        assert ceiling["array_ops_per_s"] == pytest.approx(96e9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            rmt_key_rate_ceiling(0)
        with pytest.raises(ConfigError):
            rmt_key_rate_ceiling(1e9, 0)
