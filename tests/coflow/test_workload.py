"""Tests for coflow workload generators (repro.coflow.workload)."""

from __future__ import annotations

import pytest

from repro.coflow.model import FlowDirection
from repro.coflow.workload import (
    WorkloadShape,
    aggregation_coflow,
    bsp_round_coflow,
    multicast_coflow,
    shuffle_coflow,
    synthesize_workload,
)
from repro.errors import ConfigError


class TestAggregationCoflow:
    def test_all_to_all_structure(self):
        coflow = aggregation_coflow(1, [0, 1, 2, 3], 128)
        assert coflow.pattern == "aggregation"
        assert len(coflow.input_flows) == 4
        assert len(coflow.output_flows) == 4
        assert all(f.element_count == 128 for f in coflow.flows)

    def test_custom_result_ports(self):
        coflow = aggregation_coflow(1, [0, 1], 10, result_ports=[5])
        assert coflow.egress_ports() == {5}

    def test_validation(self):
        with pytest.raises(ConfigError):
            aggregation_coflow(1, [], 10)
        with pytest.raises(ConfigError):
            aggregation_coflow(1, [0], 0)


class TestShuffleCoflow:
    def test_flow_matrix(self):
        coflow = shuffle_coflow(1, [0, 1], [2, 3, 4], 90)
        # 2 mappers x 3 reducers = 6 flows of 30 elements each.
        assert coflow.width == 6
        assert all(f.element_count == 30 for f in coflow.flows)
        assert coflow.total_elements == 180

    def test_uneven_split_preserves_total(self):
        coflow = shuffle_coflow(1, [0], [1, 2, 3], 100)
        assert coflow.total_elements == 100
        counts = sorted(f.element_count for f in coflow.flows)
        assert counts == [33, 33, 34]

    def test_zero_count_flows_omitted(self):
        coflow = shuffle_coflow(1, [0], [1, 2, 3], 2)
        assert coflow.width == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            shuffle_coflow(1, [], [1], 10)


class TestBspRoundCoflow:
    def test_frontier_growth(self):
        r0 = bsp_round_coflow(1, [0, 1], 100, round_=0, growth=2.0)
        r2 = bsp_round_coflow(2, [0, 1], 100, round_=2, growth=2.0)
        assert r2.total_elements == pytest.approx(4 * r0.total_elements, rel=0.05)
        assert r0.pattern == "bsp"

    def test_negative_round_rejected(self):
        with pytest.raises(ConfigError):
            bsp_round_coflow(1, [0, 1], 100, round_=-1)


class TestMulticastCoflow:
    def test_fan_out(self):
        coflow = multicast_coflow(1, 0, [1, 2, 3], 64)
        assert len(coflow.input_flows) == 1
        assert len(coflow.output_flows) == 3
        assert coflow.egress_ports() == {1, 2, 3}

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigError):
            multicast_coflow(1, 0, [], 64)


class TestSynthesizeWorkload:
    def test_deterministic_given_seed(self, rng):
        from repro.sim.rng import make_rng

        a = synthesize_workload(20, 16, make_rng(3))
        b = synthesize_workload(20, 16, make_rng(3))
        assert [c.pattern for c in a] == [c.pattern for c in b]
        assert [c.size_bytes for c in a] == [c.size_bytes for c in b]

    def test_counts_and_ports_in_range(self, rng):
        workload = synthesize_workload(50, 16, rng)
        assert len(workload) == 50
        for coflow in workload:
            for flow in coflow.flows:
                assert 0 <= flow.src_port < 16
                assert 0 <= flow.dst_port < 16

    def test_widths_are_heavy_tailed(self, rng):
        workload = synthesize_workload(300, 64, rng)
        widths = sorted(workload.widths())
        # Most coflows narrow, a visible tail of wide ones.
        assert widths[len(widths) // 2] <= 16
        assert widths[-1] >= 32

    def test_pattern_mix_respected(self, rng):
        workload = synthesize_workload(400, 32, rng)
        patterns = {c.pattern for c in workload}
        assert {"aggregation", "shuffle", "bsp", "multicast"} <= patterns

    def test_release_times_increase_with_interarrival(self, rng):
        workload = synthesize_workload(
            20, 8, rng, mean_interarrival_s=1e-3
        )
        releases = [c.release_time for c in workload]
        assert releases == sorted(releases)
        assert releases[-1] > 0

    def test_invalid_args(self, rng):
        with pytest.raises(ConfigError):
            synthesize_workload(0, 8, rng)
        with pytest.raises(ConfigError):
            synthesize_workload(5, 1, rng)

    def test_shape_validation(self):
        with pytest.raises(ConfigError):
            WorkloadShape(pattern_mix=(("aggregation", 0.5),))
        with pytest.raises(ConfigError):
            WorkloadShape(max_width=1)

    def test_total_accounting(self, rng):
        workload = synthesize_workload(30, 16, rng)
        assert workload.total_bytes == sum(c.size_bytes for c in workload)
        assert workload.total_elements == sum(c.total_elements for c in workload)
        assert len(workload.by_pattern("shuffle")) == sum(
            1 for c in workload if c.pattern == "shuffle"
        )
