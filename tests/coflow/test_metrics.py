"""Tests for coflow metrics (repro.coflow.metrics)."""

from __future__ import annotations

import pytest

from repro.coflow.metrics import (
    CoflowMetrics,
    completion_time,
    goodput_fraction,
    ideal_cct,
    key_rate,
)
from repro.coflow.workload import aggregation_coflow
from repro.errors import ConfigError
from repro.net.traffic import make_coflow_packet
from repro.units import GBPS


class TestCompletionTime:
    def test_last_flow_defines_cct(self):
        assert completion_time({0: 1.0, 1: 3.0, 2: 2.0}) == 3.0

    def test_release_offset(self):
        assert completion_time({0: 5.0}, release_time=2.0) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            completion_time({})

    def test_finish_before_release_rejected(self):
        with pytest.raises(ConfigError):
            completion_time({0: 1.0}, release_time=2.0)


class TestGoodputFraction:
    def test_scalar_packets_have_poor_goodput(self):
        """Section 2(2): single-element packets are 'often small and thus
        have subpar goodput'."""
        scalar = [make_coflow_packet(1, 0, i, [(i, i)]) for i in range(10)]
        wide = [
            make_coflow_packet(1, 0, i, [(j, j) for j in range(16)])
            for i in range(10)
        ]
        g_scalar = goodput_fraction(scalar)
        g_wide = goodput_fraction(wide)
        assert g_scalar < 0.15
        assert g_wide > 0.6
        assert g_wide > 4 * g_scalar

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            goodput_fraction([])


class TestKeyRate:
    def test_multiplies_packing_factor(self):
        assert key_rate(6e9, 16) == pytest.approx(96e9)
        assert key_rate(6e9, 1) == pytest.approx(6e9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            key_rate(-1, 1)
        with pytest.raises(ConfigError):
            key_rate(1e9, 0)


class TestCoflowMetrics:
    def _metrics(self) -> CoflowMetrics:
        return CoflowMetrics(
            coflow_id=1,
            release_time=1.0,
            finish_time=3.0,
            wire_bytes=2000,
            goodput_bytes=1000,
            packets=10,
            elements=100,
        )

    def test_derived_quantities(self):
        m = self._metrics()
        assert m.cct == 2.0
        assert m.goodput == 0.5
        assert m.elements_per_packet == 10.0
        assert m.throughput_bps() == pytest.approx(2000 * 8 / 2.0)
        assert m.element_rate() == pytest.approx(50.0)

    def test_zero_cct_guarded(self):
        m = CoflowMetrics(1, 1.0, 1.0, 10, 5, 1, 1)
        with pytest.raises(ConfigError):
            m.throughput_bps()

    def test_zero_packets_goodput(self):
        m = CoflowMetrics(1, 0.0, 1.0, 0, 0, 0, 0)
        assert m.goodput == 0.0
        assert m.elements_per_packet == 0.0


class TestIdealCct:
    def test_most_loaded_port_bounds(self):
        coflow = aggregation_coflow(1, [0, 1], 1000)
        cct = ideal_cct(coflow, 100 * GBPS, elements_per_packet=16)
        # Each port carries input + output: 2 x 1000 elements x 8 B plus
        # per-packet overhead; the bound must exceed the raw payload time.
        payload_time = 2 * 1000 * 8 * 8 / (100 * GBPS)
        assert cct > payload_time

    def test_packing_reduces_ideal_cct(self):
        coflow = aggregation_coflow(1, [0, 1], 1000)
        scalar = ideal_cct(coflow, 100 * GBPS, elements_per_packet=1)
        wide = ideal_cct(coflow, 100 * GBPS, elements_per_packet=16)
        assert scalar > 3 * wide

    def test_invalid_port_speed(self):
        coflow = aggregation_coflow(1, [0, 1], 10)
        with pytest.raises(ConfigError):
            ideal_cct(coflow, 0, 1)
