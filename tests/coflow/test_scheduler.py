"""Tests for coflow-aware scheduling (repro.coflow.scheduler)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coflow.model import Coflow, Flow, FlowDirection
from repro.coflow.scheduler import (
    FairSharingScheduler,
    FifoCoflowScheduler,
    SebfScheduler,
)
from repro.coflow.workload import synthesize_workload
from repro.errors import ConfigError
from repro.sim.rng import make_rng
from repro.units import BITS_PER_BYTE, GBPS


def _coflow(cid: int, flows: list[tuple[int, int, int]], release: float = 0.0) -> Coflow:
    """flows: (src, dst, elements)."""
    coflow = Coflow(cid, pattern="test", release_time=release)
    for i, (src, dst, elements) in enumerate(flows):
        coflow.add(Flow(i, src, dst, elements, direction=FlowDirection.INPUT))
    return coflow


class TestFluidModel:
    def test_single_flow_drains_at_port_speed(self):
        coflow = _coflow(1, [(0, 1, 1000)])
        result = FifoCoflowScheduler().schedule([coflow], 100 * GBPS)
        expected = 1000 * 8 * BITS_PER_BYTE / (100 * GBPS)
        assert result.cct[1] == pytest.approx(expected)

    def test_two_flows_sharing_a_port_halve(self):
        """Two same-coflow flows from one src port split its capacity."""
        coflow = _coflow(1, [(0, 1, 1000), (0, 2, 1000)])
        result = FifoCoflowScheduler().schedule([coflow], 100 * GBPS)
        single = 1000 * 8 * BITS_PER_BYTE / (100 * GBPS)
        assert result.cct[1] == pytest.approx(2 * single)

    def test_disjoint_flows_run_in_parallel(self):
        coflow = _coflow(1, [(0, 1, 1000), (2, 3, 1000)])
        result = FifoCoflowScheduler().schedule([coflow], 100 * GBPS)
        single = 1000 * 8 * BITS_PER_BYTE / (100 * GBPS)
        assert result.cct[1] == pytest.approx(single)

    def test_release_times_respected(self):
        late = _coflow(2, [(0, 1, 1000)], release=1.0)
        result = FifoCoflowScheduler().schedule([late], 100 * GBPS)
        single = 1000 * 8 * BITS_PER_BYTE / (100 * GBPS)
        assert result.makespan == pytest.approx(1.0 + single)
        assert result.cct[2] == pytest.approx(single)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FifoCoflowScheduler().schedule([], GBPS)
        with pytest.raises(ConfigError):
            FifoCoflowScheduler().schedule([_coflow(1, [(0, 1, 10)])], 0)


class TestPolicies:
    def _contended_pair(self):
        # Small coflow and big coflow share port 0.
        small = _coflow(1, [(0, 1, 100)])
        big = _coflow(2, [(0, 2, 10000)])
        return [big, small]  # big arrives "first" by list order

    def test_fifo_serves_arrival_order(self):
        big, small = self._contended_pair()
        big.release_time = 0.0
        small.release_time = 0.0
        result = FifoCoflowScheduler().schedule([big, small], 100 * GBPS)
        # FIFO (by release, tie by id): big (id 2) vs small (id 1) —
        # tie broken by id, so small goes first here.
        assert result.cct[1] < result.cct[2]

    def test_sebf_prioritizes_small_bottleneck(self):
        coflows = self._contended_pair()
        result = SebfScheduler().schedule(coflows, 100 * GBPS)
        small_alone = 100 * 8 * BITS_PER_BYTE / (100 * GBPS)
        assert result.cct[1] == pytest.approx(small_alone, rel=1e-6)

    def test_sebf_beats_fifo_on_average_cct(self):
        """The classic coflow result: bottleneck-aware ordering lowers
        mean CCT on contended mixes."""
        workload = synthesize_workload(40, 8, make_rng(3))
        coflows = list(workload)
        fifo = FifoCoflowScheduler().schedule(coflows, 100 * GBPS)
        sebf = SebfScheduler().schedule(coflows, 100 * GBPS)
        assert sebf.average_cct < fifo.average_cct

    def test_fair_sharing_no_starvation(self):
        big, small = self._contended_pair()
        result = FairSharingScheduler().schedule([big, small], 100 * GBPS)
        # Under fair sharing the small coflow finishes quickly even while
        # the big one runs: both progress at once.
        assert result.cct[1] < result.cct[2]
        assert result.cct[1] < result.makespan / 10

    def test_makespan_invariant_under_work_conservation(self):
        """All three policies are work-conserving: same total makespan on
        a single contended port."""
        coflows = [
            _coflow(1, [(0, 1, 500)]),
            _coflow(2, [(0, 2, 1500)]),
        ]
        results = [
            policy().schedule(coflows, 100 * GBPS)
            for policy in (FifoCoflowScheduler, FairSharingScheduler, SebfScheduler)
        ]
        makespans = [r.makespan for r in results]
        assert all(m == pytest.approx(makespans[0], rel=1e-6) for m in makespans)

    def test_bottleneck_computation(self):
        coflow = _coflow(1, [(0, 1, 100), (0, 2, 200), (3, 1, 50)])
        # Port 0 carries 300 elements = 2400 B.
        expected = 300 * 8 * BITS_PER_BYTE / (100 * GBPS)
        assert SebfScheduler.bottleneck_s(coflow, 100 * GBPS) == pytest.approx(expected)

    def test_schedule_result_comparisons(self):
        coflows = [_coflow(1, [(0, 1, 100)]), _coflow(2, [(0, 2, 100)])]
        fifo = FifoCoflowScheduler().schedule(coflows, GBPS)
        sebf = SebfScheduler().schedule(coflows, GBPS)
        assert fifo.slowdown_vs(sebf) > 0
        other = FifoCoflowScheduler().schedule([_coflow(3, [(0, 1, 1)])], GBPS)
        with pytest.raises(ConfigError):
            fifo.slowdown_vs(other)


class TestProperties:
    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=2**31))
    def test_all_coflows_complete_under_every_policy(self, n, seed):
        workload = synthesize_workload(n, 6, make_rng(seed))
        coflows = list(workload)
        for policy in (FifoCoflowScheduler, FairSharingScheduler, SebfScheduler):
            result = policy().schedule(coflows, 100 * GBPS)
            assert set(result.cct) == {c.coflow_id for c in coflows}
            assert all(cct > 0 for cct in result.cct.values())

    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_cct_lower_bounded_by_own_bottleneck(self, seed):
        """No policy can beat a coflow's bottleneck drain time."""
        workload = synthesize_workload(8, 6, make_rng(seed))
        coflows = list(workload)
        result = SebfScheduler().schedule(coflows, 100 * GBPS)
        for coflow in coflows:
            bound = SebfScheduler.bottleneck_s(coflow, 100 * GBPS)
            assert result.cct[coflow.coflow_id] >= bound * (1 - 1e-9)
