"""Tests for placement policies (repro.coflow.placement)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coflow.placement import (
    ExplicitPlacement,
    HashPlacement,
    PortAffinityPlacement,
    RangePlacement,
)
from repro.errors import ConfigError, PlacementError


class TestHashPlacement:
    def test_deterministic(self):
        policy = HashPlacement(4)
        assert policy.place(42) == policy.place(42)

    def test_roughly_uniform(self):
        policy = HashPlacement(4)
        counts = policy.histogram(list(range(4000)))
        assert all(800 < c < 1200 for c in counts)
        assert policy.balance(list(range(4000))) > 0.85

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=1, max_value=64))
    def test_always_in_range(self, key, partitions):
        policy = HashPlacement(partitions)
        assert 0 <= policy.place(key) < partitions

    def test_invalid_partitions(self):
        with pytest.raises(ConfigError):
            HashPlacement(0)


class TestRangePlacement:
    def test_boundaries_partition_the_line(self):
        policy = RangePlacement([10, 20])
        assert policy.partitions == 3
        assert policy.place(5) == 0
        assert policy.place(10) == 1
        assert policy.place(15) == 1
        assert policy.place(20) == 2
        assert policy.place(1000) == 2

    def test_unsorted_rejected(self):
        with pytest.raises(ConfigError):
            RangePlacement([20, 10])

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigError):
            RangePlacement([10, 10])

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            RangePlacement([])

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=10, unique=True))
    def test_place_is_monotone_in_key(self, boundaries):
        policy = RangePlacement(sorted(boundaries))
        placements = [policy.place(k) for k in range(0, 1001, 13)]
        assert placements == sorted(placements)


class TestExplicitPlacement:
    def test_mapping_and_default(self):
        policy = ExplicitPlacement(4, {1: 2, 5: 3}, default=0)
        assert policy.place(1) == 2
        assert policy.place(5) == 3
        assert policy.place(99) == 0

    def test_strict_mode_raises_on_unknown(self):
        policy = ExplicitPlacement(4, {1: 2}, strict=True)
        with pytest.raises(PlacementError):
            policy.place(99)

    def test_no_default_raises(self):
        policy = ExplicitPlacement(4, {1: 2})
        with pytest.raises(PlacementError):
            policy.place(3)

    def test_out_of_range_mapping_rejected(self):
        with pytest.raises(ConfigError):
            ExplicitPlacement(2, {1: 5})
        with pytest.raises(ConfigError):
            ExplicitPlacement(2, {}, default=7)


class TestPortAffinityPlacement:
    def test_rmt_port_to_pipeline_map(self):
        policy = PortAffinityPlacement(num_ports=64, ports_per_pipeline=16)
        assert policy.partitions == 4
        assert policy.place_port(0) == 0
        assert policy.place_port(15) == 0
        assert policy.place_port(16) == 1
        assert policy.place_port(63) == 3

    def test_ports_of_inverse(self):
        policy = PortAffinityPlacement(num_ports=8, ports_per_pipeline=4)
        assert policy.ports_of(0) == [0, 1, 2, 3]
        assert policy.ports_of(1) == [4, 5, 6, 7]

    def test_out_of_range(self):
        policy = PortAffinityPlacement(8, 4)
        with pytest.raises(PlacementError):
            policy.place_port(8)
        with pytest.raises(PlacementError):
            policy.ports_of(2)

    def test_uneven_last_pipeline(self):
        policy = PortAffinityPlacement(num_ports=10, ports_per_pipeline=4)
        assert policy.partitions == 3
        assert policy.ports_of(2) == [8, 9]

    def test_balance_zero_keys_guarded(self):
        policy = HashPlacement(2)
        with pytest.raises(PlacementError):
            policy.balance([])
