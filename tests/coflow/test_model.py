"""Tests for the flow/coflow data model (repro.coflow.model)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coflow.model import Coflow, Flow, FlowDirection
from repro.errors import ConfigError


class TestFlow:
    def test_size_bytes(self):
        flow = Flow(0, 1, 2, element_count=100, element_width_bytes=8)
        assert flow.size_bytes == 800

    def test_packet_count_ceiling(self):
        flow = Flow(0, 1, 2, element_count=100)
        assert flow.packet_count(16) == 7
        assert flow.packet_count(1) == 100
        assert flow.packet_count(100) == 1

    def test_invalid_packing(self):
        flow = Flow(0, 1, 2, element_count=10)
        with pytest.raises(ConfigError):
            flow.packet_count(0)

    def test_negative_elements_rejected(self):
        with pytest.raises(ConfigError):
            Flow(0, 1, 2, element_count=-1)

    def test_packets_materialization(self):
        flow = Flow(3, 1, 2, element_count=10)
        packets = flow.packets(coflow_id=9, elements_per_packet=4)
        assert len(packets) == 3
        assert packets[0].element_count == 4
        assert packets[-1].element_count == 2  # short tail
        assert packets[0].meta.ingress_port == 1
        assert packets[0].meta.egress_port == 2
        assert packets[0].header("coflow")["flow_id"] == 3
        seqs = [p.header("coflow")["seq"] for p in packets]
        assert seqs == [0, 1, 2]

    def test_packets_value_fn(self):
        flow = Flow(0, 1, 2, element_count=3)
        packets = flow.packets(1, 10, value_fn=lambda k: k * 2)
        assert packets[0].payload is not None
        assert packets[0].payload.values() == [0, 2, 4]

    @given(
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=1, max_value=64),
    )
    def test_packets_carry_all_elements_exactly_once(self, count, epp):
        flow = Flow(0, 1, 2, element_count=count)
        packets = flow.packets(1, epp)
        keys = [e.key for p in packets for e in (p.payload or [])]
        assert keys == list(range(count))


class TestCoflow:
    def _sample(self) -> Coflow:
        coflow = Coflow(1, pattern="test")
        coflow.add(Flow(0, 0, 4, 100, direction=FlowDirection.INPUT))
        coflow.add(Flow(1, 1, 5, 300, direction=FlowDirection.INPUT))
        coflow.add(Flow(2, 0, 6, 50, direction=FlowDirection.OUTPUT))
        return coflow

    def test_width_size_length(self):
        coflow = self._sample()
        assert coflow.width == 3
        assert coflow.size_bytes == 450 * 8
        assert coflow.length_bytes == 300 * 8
        assert coflow.total_elements == 450

    def test_direction_partition(self):
        coflow = self._sample()
        assert len(coflow.input_flows) == 2
        assert len(coflow.output_flows) == 1

    def test_port_sets(self):
        coflow = self._sample()
        assert coflow.ingress_ports() == {0, 1}
        assert coflow.egress_ports() == {6}

    def test_duplicate_flow_ids_rejected(self):
        coflow = self._sample()
        with pytest.raises(ConfigError):
            coflow.add(Flow(0, 9, 9, 1))

    def test_duplicate_at_construction_rejected(self):
        with pytest.raises(ConfigError):
            Coflow(1, flows=[Flow(0, 0, 1, 1), Flow(0, 2, 3, 1)])

    def test_empty_coflow_properties(self):
        coflow = Coflow(1)
        assert coflow.width == 0
        assert coflow.length_bytes == 0
