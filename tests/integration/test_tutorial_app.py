"""The docs/PROGRAMMING_MODEL.md worked example, kept honest by CI.

A per-key rate limiter: admit at most ``budget`` packets per key, drop
the excess.  Runs unchanged on both targets and on the run-to-completion
baseline.
"""

from __future__ import annotations

import pytest

from repro.adcp.switch import ADCPSwitch
from repro.arch.app import PipelineContext, SwitchApp
from repro.arch.decision import Decision
from repro.baselines import RtcConfig, RunToCompletionSwitch
from repro.errors import ConfigError
from repro.net.packet import Packet
from repro.net.phv import PHV
from repro.net.traffic import make_coflow_packet
from repro.rmt.switch import RMTSwitch


class RateLimiterApp(SwitchApp):
    """Admit at most ``budget`` packets per key; drop the rest."""

    def __init__(self, key_space: int, budget: int, elements_per_packet: int = 1):
        super().__init__("ratelimit", elements_per_packet)
        if key_space < 1 or budget < 1:
            raise ConfigError("key space and budget must be positive")
        self.key_space = key_space
        self.budget = budget

    def uses_central_state(self) -> bool:
        return True

    def central(self, ctx: PipelineContext, packet: Packet, phv: PHV) -> Decision:
        counts = ctx.register("admitted", self.key_space, width_bits=32)
        assert packet.payload is not None
        key = packet.payload[0].key
        if counts.read(key) >= self.budget:
            return Decision.drop("rate_limited")
        counts.add(key, 1)
        return Decision.forward()


def _stream(keys: list[int], egress: int = 7):
    events = []
    for i, key in enumerate(keys):
        packet = make_coflow_packet(1, 0, i, [(key, i)])
        packet.meta.ingress_port = i % 4
        packet.meta.egress_port = egress
        events.append((i * 1e-8, packet))
    return events


KEYS = [5] * 6 + [9] * 2 + [5, 9, 11]  # key 5: 7 offers, 9: 3, 11: 1


class TestRateLimiterEverywhere:
    def _check(self, result):
        delivered = {}
        for packet in result.delivered:
            key = packet.payload[0].key
            delivered[key] = delivered.get(key, 0) + 1
        assert delivered == {5: 3, 9: 3, 11: 1}
        limited = [
            p for p in result.dropped if p.meta.drop_reason == "rate_limited"
        ]
        assert len(limited) == 4  # 7-3 for key 5, 0 for 9 and 11

    def test_on_adcp(self, small_adcp_config):
        switch = ADCPSwitch(small_adcp_config, RateLimiterApp(1024, 3))
        self._check(switch.run(_stream(KEYS)))

    def test_on_rmt(self, small_rmt_config):
        switch = RMTSwitch(small_rmt_config, RateLimiterApp(1024, 3))
        self._check(switch.run(_stream(KEYS)))

    def test_on_run_to_completion(self):
        switch = RunToCompletionSwitch(RtcConfig(), RateLimiterApp(1024, 3))
        self._check(switch.run(_stream(KEYS)))

    def test_wide_packets_rejected_on_rmt(self, small_rmt_config):
        from repro.errors import CompileError

        with pytest.raises(CompileError):
            RMTSwitch(
                small_rmt_config,
                RateLimiterApp(1024, 3, elements_per_packet=4),
            )

    def test_validation(self):
        with pytest.raises(ConfigError):
            RateLimiterApp(0, 3)
        with pytest.raises(ConfigError):
            RateLimiterApp(16, 0)
