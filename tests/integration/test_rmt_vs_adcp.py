"""Cross-architecture integration tests.

Each test runs the *same logical workload* on both switch models and
asserts the paper's qualitative claims: same answers, different costs.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.adcp.config import ADCPConfig
from repro.adcp.switch import ADCPSwitch
from repro.apps import (
    DBShuffleApp,
    GraphMiningApp,
    GroupCommApp,
    ParameterServerApp,
)
from repro.rmt.config import RMTConfig, StateMode
from repro.rmt.switch import RMTSwitch
from repro.sim.rng import make_rng
from repro.units import GBPS


WORKERS = [0, 1, 4, 5]
VECTOR = 128


def _rmt(small_rmt_config, app, mode=StateMode.EGRESS_PIN):
    config = dataclasses.replace(small_rmt_config, state_mode=mode)
    switch = RMTSwitch(config, app)
    return switch, config


class TestAggregationParity:
    """The parameter server gives identical answers on every target/mode;
    only the costs differ."""

    def test_same_results_everywhere(self, small_rmt_config, small_adcp_config):
        results = {}
        for label, build in {
            "adcp": lambda: (
                ADCPSwitch(
                    small_adcp_config,
                    ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16),
                ),
                small_adcp_config.port_speed_bps,
            ),
            "rmt_pin": lambda: (
                RMTSwitch(
                    small_rmt_config,
                    ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1),
                ),
                small_rmt_config.port_speed_bps,
            ),
            "rmt_recirc": lambda: (
                RMTSwitch(
                    dataclasses.replace(
                        small_rmt_config, state_mode=StateMode.RECIRCULATE
                    ),
                    ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1),
                ),
                small_rmt_config.port_speed_bps,
            ),
        }.items():
            switch, speed = build()
            app = switch.app
            run = switch.run(app.workload(speed))
            results[label] = app.collect_results(run.delivered)
        assert results["adcp"] == results["rmt_pin"] == results["rmt_recirc"]

    def test_adcp_faster_and_untaxed(self, small_rmt_config, small_adcp_config):
        adcp_app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16)
        adcp = ADCPSwitch(small_adcp_config, adcp_app)
        adcp_run = adcp.run(adcp_app.workload(small_adcp_config.port_speed_bps))

        rmt_app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1)
        rmt, config = _rmt(small_rmt_config, rmt_app)
        rmt_run = rmt.run(rmt_app.workload(config.port_speed_bps))

        assert adcp_run.recirculated_packets == 0
        assert rmt_run.recirculated_packets > 0
        assert adcp_run.duration_s < rmt_run.duration_s / 2

    def test_rmt_goodput_penalty(self, small_rmt_config, small_adcp_config):
        """Scalar packets waste most wire bytes on headers (section 2)."""
        from repro.coflow.metrics import goodput_fraction

        adcp_app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16)
        adcp_packets = [p for _, p in adcp_app.workload(100 * GBPS)]
        rmt_app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1)
        rmt_packets = [p for _, p in rmt_app.workload(100 * GBPS)]
        assert goodput_fraction(adcp_packets) > 3 * goodput_fraction(rmt_packets)

    def test_rmt_needs_16x_the_packets(self):
        adcp_app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=16)
        rmt_app = ParameterServerApp(WORKERS, VECTOR, elements_per_packet=1)
        adcp_count = sum(1 for _ in adcp_app.workload(100 * GBPS))
        rmt_count = sum(1 for _ in rmt_app.workload(100 * GBPS))
        assert rmt_count == 16 * adcp_count


class TestShuffleParity:
    def test_same_group_totals(self, small_rmt_config, small_adcp_config):
        elements = 96
        adcp_app = DBShuffleApp([0, 1], [4, 5], 16, elements_per_packet=16)
        adcp = ADCPSwitch(small_adcp_config, adcp_app)
        adcp_got = adcp_app.collect_results(
            adcp.run(
                adcp_app.workload(small_adcp_config.port_speed_bps, elements)
            ).delivered
        )
        rmt_app = DBShuffleApp([0, 1], [4, 5], 16, elements_per_packet=1)
        rmt, config = _rmt(small_rmt_config, rmt_app)
        rmt_got = rmt_app.collect_results(
            rmt.run(rmt_app.workload(config.port_speed_bps, elements)).delivered
        )
        assert adcp_got == rmt_got == adcp_app.expected_result(elements)


class TestDedupParity:
    def test_same_unique_set(self, small_rmt_config, small_adcp_config):
        adcp_app = GraphMiningApp(WORKERS, 512, elements_per_packet=16)
        adcp = ADCPSwitch(small_adcp_config, adcp_app)
        adcp_run = adcp.run(
            adcp_app.superstep_workload(
                small_adcp_config.port_speed_bps, 100, 2.0, make_rng(11)
            )
        )
        rmt_app = GraphMiningApp(WORKERS, 512, elements_per_packet=1)
        rmt, config = _rmt(small_rmt_config, rmt_app)
        rmt_run = rmt.run(
            rmt_app.superstep_workload(
                config.port_speed_bps, 100, 2.0, make_rng(11)
            )
        )
        assert (
            adcp_app.collect_forwarded(adcp_run.delivered)
            == rmt_app.collect_forwarded(rmt_run.delivered)
        )


class TestMulticastParity:
    def test_same_deliveries_different_tax(self, small_rmt_config, small_adcp_config):
        groups = {1: [2, 4, 6]}
        adcp_app = GroupCommApp(groups)
        adcp = ADCPSwitch(small_adcp_config, adcp_app)
        adcp_run = adcp.run(
            adcp_app.workload(small_adcp_config.port_speed_bps, {0: 1}, 3)
        )
        rmt_app = GroupCommApp(groups)
        rmt, config = _rmt(small_rmt_config, rmt_app)
        rmt_run = rmt.run(rmt_app.workload(config.port_speed_bps, {0: 1}, 3))
        assert (
            adcp_app.deliveries_per_port(adcp_run.delivered)
            == rmt_app.deliveries_per_port(rmt_run.delivered)
        )
        assert adcp_run.recirculated_packets == 0
        assert rmt_run.recirculated_packets > 0
