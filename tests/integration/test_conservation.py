"""Conservation properties: no packet is silently lost, ever."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adcp.config import ADCPConfig
from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp
from repro.baselines import RtcConfig, RunToCompletionSwitch
from repro.net.traffic import make_coflow_packet
from repro.rmt.config import RMTConfig
from repro.rmt.switch import RMTSwitch
from repro.sim.rng import make_rng
from repro.units import GBPS


def _random_stream(rng, n, ports=8):
    stream = []
    time = 0.0
    for i in range(n):
        packet = make_coflow_packet(1, 0, i, [(int(rng.integers(0, 1000)), i)])
        packet.meta.ingress_port = int(rng.integers(0, ports))
        if rng.random() < 0.9:
            packet.meta.egress_port = int(rng.integers(0, ports))
        # else: no route -> must surface as a drop, not vanish
        time += float(rng.exponential(1e-8))
        packet.meta.arrival_time = time
        stream.append((time, packet))
    return stream


class TestForwardingConservation:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_rmt_accounts_for_every_packet(self, seed):
        config = RMTConfig(
            num_ports=8, pipelines=2, port_speed_bps=100 * GBPS,
            min_wire_packet_bytes=84.0, frequency_hz=1.25e9,
        )
        stream = _random_stream(make_rng(seed), 120)
        switch = RMTSwitch(config)
        result = switch.run(iter(stream))
        assert (
            result.delivered_count + len(result.dropped) + result.consumed
            == len(stream)
        )
        for packet in result.dropped:
            assert packet.meta.drop_reason is not None

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_adcp_accounts_for_every_packet(self, seed):
        config = ADCPConfig(
            num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
            central_pipelines=4,
        )
        stream = _random_stream(make_rng(seed), 120)
        switch = ADCPSwitch(config)
        result = switch.run(iter(stream))
        assert (
            result.delivered_count + len(result.dropped) + result.consumed
            == len(stream)
        )

    @settings(deadline=None, max_examples=8)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_rtc_accounts_for_every_packet(self, seed):
        stream = _random_stream(make_rng(seed), 120)
        switch = RunToCompletionSwitch(RtcConfig())
        result = switch.run(iter(stream))
        assert (
            result.delivered_count + len(result.dropped) + result.consumed
            == len(stream)
        )


class TestAggregationConservation:
    @settings(deadline=None, max_examples=6)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=8, max_value=96),
    )
    def test_element_conservation_through_aggregation(self, workers, vector):
        """Every input element is folded into exactly one output aggregate:
        sum over delivered aggregates equals the grand total of inputs."""
        config = ADCPConfig(
            num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
            central_pipelines=4,
        )
        app = ParameterServerApp(
            list(range(workers)), vector, elements_per_packet=8
        )
        switch = ADCPSwitch(config, app)
        result = switch.run(app.workload(config.port_speed_bps))
        got = app.collect_results(result.delivered)
        input_total = workers * sum(key + 1 for key in range(vector))
        assert sum(got.values()) == input_total
