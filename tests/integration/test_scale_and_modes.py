"""Scale checks and remaining state-mode coverage."""

from __future__ import annotations

import dataclasses

import pytest

from repro.adcp.config import ADCPConfig
from repro.adcp.switch import ADCPSwitch
from repro.apps import DBShuffleApp, GraphMiningApp, GroupCommApp
from repro.net.traffic import DeterministicSource, make_coflow_packet
from repro.rmt.config import RMTConfig, StateMode
from repro.rmt.switch import RMTSwitch
from repro.sim.rng import make_rng
from repro.units import GBPS


class TestFullScaleConstruction:
    def test_64_port_rmt_builds_and_forwards(self):
        config = RMTConfig(
            num_ports=64, port_speed_bps=100 * GBPS, pipelines=4,
            min_wire_packet_bytes=160.0, frequency_hz=1.25e9,
        )
        switch = RMTSwitch(config)
        assert len(switch.ingress) == 4
        assert len(switch.tx_ports) == 64
        packets = []
        for i in range(50):
            packet = make_coflow_packet(1, 0, i, [(i, i)] * 1)
            packet.meta.egress_port = 63
            packets.append(packet)
        result = switch.run(
            DeterministicSource(0, config.port_speed_bps, packets).packets()
        )
        assert result.delivered_count == 50

    def test_64_port_adcp_builds_and_forwards(self):
        config = ADCPConfig(
            num_ports=64, port_speed_bps=100 * GBPS, demux_factor=2,
            central_pipelines=8,
        )
        switch = ADCPSwitch(config)
        assert len(switch.ingress) == 128
        assert len(switch.central) == 8
        packets = []
        for i in range(50):
            packet = make_coflow_packet(1, 0, i, [(i, i)])
            packet.meta.egress_port = 63
            packets.append(packet)
        result = switch.run(
            DeterministicSource(0, config.port_speed_bps, packets).packets()
        )
        assert result.delivered_count == 50

    def test_table2_row_configs_build_switches(self):
        from repro.rmt.config import table2_config

        for row in range(5):
            RMTSwitch(table2_config(row))


class TestRecirculateModeApps:
    """All the Table 1 apps must be correct under RMT's *other* state
    workaround too."""

    def _config(self, small_rmt_config):
        return dataclasses.replace(
            small_rmt_config, state_mode=StateMode.RECIRCULATE
        )

    def test_dbshuffle(self, small_rmt_config):
        config = self._config(small_rmt_config)
        app = DBShuffleApp([0, 1], [4, 5], 16, elements_per_packet=1)
        switch = RMTSwitch(config, app)
        result = switch.run(app.workload(config.port_speed_bps, 64))
        assert app.collect_results(result.delivered) == app.expected_result(64)

    def test_graphmining(self, small_rmt_config):
        config = self._config(small_rmt_config)
        app = GraphMiningApp([0, 1, 4, 5], 256, elements_per_packet=1)
        switch = RMTSwitch(config, app)
        result = switch.run(
            app.superstep_workload(config.port_speed_bps, 60, 1.5, make_rng(5))
        )
        forwarded = app.collect_forwarded(result.delivered)
        assert len(forwarded) == app.uniques_forwarded
        assert app.duplicates_absorbed > 0

    def test_groupcomm(self, small_rmt_config):
        config = self._config(small_rmt_config)
        app = GroupCommApp({1: [2, 4, 6]})
        switch = RMTSwitch(config, app)
        result = switch.run(
            app.workload(config.port_speed_bps, {0: 1}, 3)
        )
        assert app.deliveries_per_port(result.delivered) == {2: 3, 4: 3, 6: 3}


class TestModeCostOrdering:
    def test_recirc_tax_differs_between_modes(self, small_rmt_config):
        """Both workarounds pay; they pay differently (the Figure 5 bench
        quantifies it — here we pin the qualitative fact)."""
        from repro.apps import ParameterServerApp

        taxes = {}
        for mode in (StateMode.EGRESS_PIN, StateMode.RECIRCULATE):
            config = dataclasses.replace(small_rmt_config, state_mode=mode)
            app = ParameterServerApp([0, 1, 4, 5], 64, elements_per_packet=1)
            switch = RMTSwitch(config, app)
            result = switch.run(app.workload(config.port_speed_bps))
            assert app.collect_results(result.delivered) == app.expected_result()
            taxes[mode] = result.recirculated_packets
        assert all(t > 0 for t in taxes.values())
        # Recirculate-to-state loops data packets (many); egress pinning
        # loops only results headed to foreign ports (fewer).
        assert taxes[StateMode.RECIRCULATE] > taxes[StateMode.EGRESS_PIN]
