"""Stress and failure-injection tests across the switch models."""

from __future__ import annotations

import dataclasses

import pytest

from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp
from repro.net.traffic import DeterministicSource, PoissonSource, make_coflow_packet
from repro.rmt.switch import RMTSwitch
from repro.sim.rng import make_rng
from repro.units import GBPS


def _stream(n, egress=7, ingress=0):
    packets = []
    for i in range(n):
        packet = make_coflow_packet(1, 0, i, [(i, i)])
        packet.meta.egress_port = egress
        packets.append(packet)
    return packets


class TestTmOverflow:
    def test_rmt_tm_drops_under_fan_in(self, small_rmt_config):
        """Many ingress ports targeting one egress port overflow a tiny TM
        buffer; drops are reported, never silent."""
        config = dataclasses.replace(small_rmt_config, tm_buffer_packets=4)
        switch = RMTSwitch(config)
        sources = []
        for port in range(7):
            packets = _stream(60, egress=7)
            sources.append(
                DeterministicSource(port, config.port_speed_bps, packets)
            )
        from repro.net.traffic import merge_sources

        result = switch.run(merge_sources(sources))
        total = 7 * 60
        assert result.delivered_count + len(result.dropped) == total
        assert any(
            p.meta.drop_reason == "tm_buffer_full" for p in result.dropped
        )
        assert switch.tm.peak_occupancy <= 4

    def test_adcp_tm_drops_accounted(self, small_adcp_config):
        config = dataclasses.replace(small_adcp_config, tm_buffer_packets=2)
        switch = ADCPSwitch(config)
        sources = [
            DeterministicSource(port, config.port_speed_bps, _stream(40))
            for port in range(4)
        ]
        from repro.net.traffic import merge_sources

        result = switch.run(merge_sources(sources))
        assert result.delivered_count + len(result.dropped) == 160
        reasons = {p.meta.drop_reason for p in result.dropped}
        assert reasons <= {"tm1_buffer_full", "tm2_buffer_full"}


class TestPoissonLoad:
    @pytest.mark.parametrize("load", [0.3, 0.9])
    def test_rmt_under_poisson(self, small_rmt_config, load):
        switch = RMTSwitch(small_rmt_config)
        source = PoissonSource(
            0, small_rmt_config.port_speed_bps, _stream(300), load, make_rng(4)
        )
        result = switch.run(source.packets())
        assert result.delivered_count == 300
        assert not result.dropped

    def test_latency_grows_with_load(self, small_adcp_config):
        def mean_latency(load):
            switch = ADCPSwitch(small_adcp_config)
            source = PoissonSource(
                0, small_adcp_config.port_speed_bps, _stream(500), load,
                make_rng(9),
            )
            result = switch.run(source.packets())
            return sum(
                p.meta.departure_time - p.meta.arrival_time
                for p in result.delivered
            ) / len(result.delivered)

        # Higher load means more queueing at the shared stations.
        assert mean_latency(0.95) >= mean_latency(0.2)


class TestUntilBound:
    def test_run_until_stops_midstream(self, small_rmt_config):
        switch = RMTSwitch(small_rmt_config)
        source = DeterministicSource(
            0, small_rmt_config.port_speed_bps, _stream(100)
        )
        arrivals = list(source.packets())
        cutoff = arrivals[50][0]
        result = switch.run(iter(arrivals), until=cutoff)
        assert 0 < result.delivered_count < 100
        assert result.duration_s <= cutoff


class TestRecirculationProvisioning:
    @pytest.mark.parametrize("ports", [1, 4])
    def test_more_recirc_bandwidth_never_hurts(self, small_rmt_config, ports):
        config = dataclasses.replace(
            small_rmt_config, recirculation_ports_per_pipeline=ports
        )
        app = ParameterServerApp([0, 1, 4, 5], 64, elements_per_packet=1)
        switch = RMTSwitch(config, app)
        result = switch.run(app.workload(config.port_speed_bps))
        assert app.collect_results(result.delivered) == app.expected_result()

    def test_provisioning_sweep_monotone(self, small_rmt_config):
        durations = []
        for ports in (1, 2, 4):
            config = dataclasses.replace(
                small_rmt_config, recirculation_ports_per_pipeline=ports
            )
            app = ParameterServerApp([0, 1, 4, 5], 128, elements_per_packet=1)
            switch = RMTSwitch(config, app)
            result = switch.run(app.workload(config.port_speed_bps))
            durations.append(result.duration_s)
        # Extra loopback bandwidth cannot slow the coflow down.
        assert durations[0] >= durations[-1] * 0.999


class TestRandomForwardingParity:
    def test_rmt_and_adcp_deliver_identical_sets(
        self, small_rmt_config, small_adcp_config
    ):
        """Pure forwarding parity on a randomized port matrix: both
        architectures deliver exactly the same (packet, port) set."""
        rng = make_rng(31)
        packets = []
        for i in range(300):
            packet = make_coflow_packet(1, 0, i, [(i, i)])
            packet.meta.ingress_port = int(rng.integers(0, 8))
            packet.meta.egress_port = int(rng.integers(0, 8))
            packets.append(packet)

        def run(switch_cls, config):
            switch = switch_cls(config)
            stream = [
                (i * 1e-8, p.copy()) for i, p in enumerate(packets)
            ]
            for (_, copy), original in zip(stream, packets):
                copy.meta.ingress_port = original.meta.ingress_port
                copy.meta.egress_port = original.meta.egress_port
            result = switch.run(iter(stream))
            return sorted(
                (p.header("coflow")["seq"], p.meta.egress_port)
                for p in result.delivered
            )

        assert run(RMTSwitch, small_rmt_config) == run(
            ADCPSwitch, small_adcp_config
        )
