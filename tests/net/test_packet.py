"""Tests for packets and element arrays (repro.net.packet)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.net.headers import standard_stack
from repro.net.packet import Element, ElementArray, Packet
from repro.net.traffic import make_coflow_packet


class TestElementArray:
    def test_from_tuples(self):
        array = ElementArray([(1, 10), (2, 20)], element_width_bytes=8)
        assert len(array) == 2
        assert array[0].key == 1
        assert array.keys() == [1, 2]
        assert array.values() == [10, 20]

    def test_width_bytes(self):
        array = ElementArray([(1, 1)] * 5, element_width_bytes=8)
        assert array.width_bytes == 40

    def test_copy_independent(self):
        array = ElementArray([(1, 1)])
        clone = array.copy()
        clone.elements[0].value = 99
        assert array[0].value == 1

    def test_invalid_width(self):
        with pytest.raises(ConfigError):
            ElementArray([], element_width_bytes=0)

    @given(st.lists(st.tuples(st.integers(0, 2**31), st.integers(0, 2**31)), max_size=32))
    def test_length_matches_input(self, pairs):
        array = ElementArray(pairs)
        assert len(array) == len(pairs)


class TestPacketSizes:
    def test_minimum_frame_padding(self):
        """A near-empty packet pads to the 64 B Ethernet minimum."""
        packet = Packet(standard_stack())
        assert packet.frame_bytes == 64
        assert packet.wire_bytes == 84

    def test_scalar_coflow_packet_is_minimum_sized(self):
        """One 8 B element on the standard stack stays in the 64 B frame:
        42 B headers + 19 B coflow + 8 B + 4 B FCS = 73 > 64... so check
        actual arithmetic instead of assuming."""
        packet = make_coflow_packet(1, 1, 0, [(1, 1)])
        expected = 14 + 20 + 8 + 19 + 8 + 4
        assert packet.frame_bytes == max(64, expected)

    def test_wide_packet_grows_linearly(self):
        p1 = make_coflow_packet(1, 1, 0, [(i, i) for i in range(1)])
        p16 = make_coflow_packet(1, 1, 0, [(i, i) for i in range(16)])
        assert p16.frame_bytes - p1.frame_bytes == 15 * 8

    def test_goodput_counts_only_elements(self):
        packet = make_coflow_packet(1, 1, 0, [(i, i) for i in range(4)])
        assert packet.goodput_bytes == 32
        assert packet.goodput_bytes < packet.wire_bytes

    def test_extra_payload_accounted(self):
        packet = Packet(standard_stack(), extra_payload_bytes=100)
        assert packet.payload_bytes == 100

    def test_negative_extra_payload_rejected(self):
        with pytest.raises(ConfigError):
            Packet(standard_stack(), extra_payload_bytes=-1)


class TestPacketHeaders:
    def test_header_lookup(self):
        packet = make_coflow_packet(3, 1, 0, [(1, 1)])
        assert packet.header("coflow")["coflow_id"] == 3
        assert packet.has_header("ipv4")
        assert not packet.has_header("vlan")

    def test_missing_header_raises(self):
        packet = Packet(standard_stack())
        with pytest.raises(ConfigError):
            packet.header("coflow")

    def test_element_count(self):
        packet = make_coflow_packet(1, 1, 0, [(1, 1), (2, 2)])
        assert packet.element_count == 2


class TestPacketCopy:
    def test_copy_gets_fresh_id_and_meta(self):
        packet = make_coflow_packet(1, 1, 0, [(1, 1)])
        packet.meta.egress_port = 5
        clone = packet.copy()
        assert clone.packet_id != packet.packet_id
        assert clone.meta.egress_port is None

    def test_copy_payload_independent(self):
        packet = make_coflow_packet(1, 1, 0, [(1, 1)])
        clone = packet.copy()
        assert clone.payload is not None and packet.payload is not None
        clone.payload.elements[0].value = 42
        assert packet.payload[0].value == 1

    def test_copy_headers_independent(self):
        packet = make_coflow_packet(1, 1, 0, [(1, 1)])
        clone = packet.copy()
        clone.header("coflow")["seq"] = 99
        assert packet.header("coflow")["seq"] == 0


class TestPacketMetadata:
    def test_dropped_flag(self):
        packet = Packet(standard_stack())
        assert not packet.meta.dropped
        packet.meta.drop_reason = "full"
        assert packet.meta.dropped

    def test_defaults(self):
        meta = Packet(standard_stack()).meta
        assert meta.ingress_port is None
        assert meta.recirculations == 0
        assert meta.central_done is False
