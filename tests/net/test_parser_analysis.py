"""Tests for parser complexity analysis (repro.net.parser_analysis)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.net.parser import ParseGraph, Parser, ParseState
from repro.net.parser_analysis import (
    analyze_graph,
    measure_parser_work,
    parser_requirement,
    ParserRequirement,
)
from repro.net.traffic import make_coflow_packet
from repro.units import GBPS, GHZ


class TestAnalyzeGraph:
    def test_standard_coflow_graph(self):
        complexity = analyze_graph(ParseGraph.standard_coflow_graph())
        assert complexity.states == 4
        assert complexity.max_depth == 4  # one visit per header state
        # eth(14) + ipv4(20) + udp(8) + coflow(19)
        assert complexity.max_header_bytes == 61
        assert complexity.max_fanout == 2

    def test_single_state_graph(self):
        from repro.net.headers import ETHERNET

        graph = ParseGraph(start="eth")
        graph.add(ParseState("eth", header_type=ETHERNET))
        complexity = analyze_graph(graph)
        assert complexity.states == 1
        assert complexity.max_header_bytes == 14

    def test_branching_takes_worst_path(self):
        from repro.net.headers import ETHERNET, IPV4, UDP

        graph = ParseGraph(start="eth")
        graph.add(
            ParseState(
                "eth", header_type=ETHERNET, select_field="ethertype",
                transitions={1: "short", 2: "long", "default": "accept"},
            )
        )
        graph.add(ParseState("short", header_type=UDP))
        graph.add(ParseState("long", header_type=IPV4,
                             transitions={"default": "long2"}))
        graph.add(ParseState("long2", header_type=IPV4))
        complexity = analyze_graph(graph)
        assert complexity.max_header_bytes == 14 + 20 + 20
        assert complexity.max_fanout == 3

    def test_cyclic_graph_bounded(self):
        """TLV-style loops are cut at the first revisit, not followed forever."""
        from repro.net.headers import UDP

        graph = ParseGraph(start="tlv")
        graph.add(ParseState("tlv", header_type=UDP,
                             select_field="src_port",
                             transitions={1: "tlv", "default": "accept"}))
        complexity = analyze_graph(graph)
        assert complexity.max_header_bytes == 8  # loop cut at first revisit


class TestParserRequirement:
    def test_header_fraction_shrinks_with_packet_size(self):
        """The §3.3 point: structure, not port speed, drives parser work.
        Bigger packets mean the parser inspects a smaller share."""
        graph = ParseGraph.standard_coflow_graph()
        small = parser_requirement(graph, 800 * GBPS, min_wire_packet_bytes=84)
        large = parser_requirement(graph, 800 * GBPS, min_wire_packet_bytes=495)
        assert small.header_fraction > large.header_fraction
        assert small.header_bandwidth_bps > large.header_bandwidth_bps

    def test_parser_clock_scales_with_port_speed_not_structure(self):
        graph = ParseGraph.standard_coflow_graph()
        slow = parser_requirement(graph, 100 * GBPS)
        fast = parser_requirement(graph, 800 * GBPS)
        assert fast.parser_clock_hz == pytest.approx(8 * slow.parser_clock_hz)

    def test_wider_lookahead_reduces_clock(self):
        graph = ParseGraph.standard_coflow_graph()
        narrow = parser_requirement(graph, 800 * GBPS, lookahead_bytes=16)
        wide = parser_requirement(graph, 800 * GBPS, lookahead_bytes=64)
        assert wide.parser_clock_hz < narrow.parser_clock_hz

    def test_800g_parser_feasible_with_wide_lookahead(self):
        """A 1.19 Bpps 800G port needs a fast parser; with 64 B lookahead
        the coflow stack parses in one cycle per packet, keeping the
        parser clock near the packet rate."""
        graph = ParseGraph.standard_coflow_graph()
        req = parser_requirement(graph, 800 * GBPS, lookahead_bytes=64)
        assert req.parser_clock_hz == pytest.approx(req.packet_rate_pps)
        assert req.parser_clock_hz / GHZ < 1.5

    def test_validation(self):
        with pytest.raises(ConfigError):
            ParserRequirement(0, 84, 40, 32)
        with pytest.raises(ConfigError):
            ParserRequirement(1e9, 84, 40, 0)
        with pytest.raises(ConfigError):
            ParserRequirement(1e9, 0, 40, 32)


class TestMeasureParserWork:
    def test_matches_analysis_on_real_packets(self):
        parser = Parser(ParseGraph.standard_coflow_graph())
        packets = [make_coflow_packet(1, 0, i, [(i, i)]) for i in range(20)]
        work = measure_parser_work(parser, packets)
        assert work["accept_rate"] == 1.0
        assert work["mean_states"] == 4.0
        # 61 header bytes + 8 payload bytes lifted into the array view.
        assert work["mean_bytes_examined"] == pytest.approx(69.0)

    def test_empty_rejected(self):
        parser = Parser(ParseGraph.standard_coflow_graph())
        with pytest.raises(ConfigError):
            measure_parser_work(parser, [])
