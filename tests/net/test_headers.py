"""Tests for header formats (repro.net.headers)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.net.headers import (
    COFLOW_HEADER,
    ETHERNET,
    IPV4,
    UDP,
    FieldSpec,
    Header,
    HeaderType,
    coflow_header,
    standard_stack,
)


class TestFieldSpec:
    def test_max_value(self):
        assert FieldSpec("f", 8).max_value == 255
        assert FieldSpec("f", 1).max_value == 1

    def test_invalid_specs(self):
        with pytest.raises(ConfigError):
            FieldSpec("", 8)
        with pytest.raises(ConfigError):
            FieldSpec("f", 0)


class TestHeaderType:
    def test_width_sums_fields(self):
        assert ETHERNET.width_bits == 112
        assert ETHERNET.width_bytes == 14
        assert IPV4.width_bytes == 20
        assert UDP.width_bytes == 8

    def test_field_lookup(self):
        assert ETHERNET.field("ethertype").width_bits == 16
        with pytest.raises(ConfigError):
            ETHERNET.field("missing")
        assert "dst_mac" in ETHERNET
        assert "nope" not in ETHERNET

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ConfigError):
            HeaderType("h", (FieldSpec("a", 8), FieldSpec("a", 8)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            HeaderType("h", ())


class TestHeader:
    def test_defaults_to_zero(self):
        header = ETHERNET.instantiate()
        assert header["dst_mac"] == 0

    def test_set_and_get(self):
        header = UDP.instantiate(dst_port=53)
        assert header["dst_port"] == 53
        header["src_port"] = 1000
        assert header["src_port"] == 1000

    def test_range_check(self):
        header = UDP.instantiate()
        with pytest.raises(ConfigError):
            header["dst_port"] = 1 << 16
        with pytest.raises(ConfigError):
            header["dst_port"] = -1

    def test_unknown_field(self):
        header = UDP.instantiate()
        with pytest.raises(ConfigError):
            _ = header["nope"]
        with pytest.raises(ConfigError):
            header["nope"] = 1

    def test_copy_is_independent(self):
        a = UDP.instantiate(dst_port=1)
        b = a.copy()
        b["dst_port"] = 2
        assert a["dst_port"] == 1

    def test_equality(self):
        assert UDP.instantiate(dst_port=5) == UDP.instantiate(dst_port=5)
        assert UDP.instantiate(dst_port=5) != UDP.instantiate(dst_port=6)

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_any_in_range_value_roundtrips(self, value):
        header = UDP.instantiate()
        header["length"] = value
        assert header["length"] == value


class TestStandardStack:
    def test_stack_is_wired(self):
        eth, ip, udp = standard_stack(dst_ip=0x0A000001)
        assert eth["ethertype"] == 0x0800
        assert ip["protocol"] == 17
        assert ip["dst_ip"] == 0x0A000001
        assert udp["dst_port"] == 0x4D43

    def test_coflow_header_fields(self):
        header = coflow_header(5, 2, seq=9, opcode=1, element_count=16, round_=3)
        assert header["coflow_id"] == 5
        assert header["flow_id"] == 2
        assert header["seq"] == 9
        assert header["opcode"] == 1
        assert header["element_count"] == 16
        assert header["round"] == 3

    def test_coflow_header_width(self):
        # 32+32+32+8+8+8+16+16 = 152 bits = 19 bytes
        assert COFLOW_HEADER.width_bytes == 19
