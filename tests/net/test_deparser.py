"""Tests for packet reassembly (repro.net.deparser)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DeparseError
from repro.net.deparser import Deparser
from repro.net.parser import ParseGraph, Parser
from repro.net.traffic import make_coflow_packet


def _parse(packet, **parser_kwargs):
    parser = Parser(ParseGraph.standard_coflow_graph(), **parser_kwargs)
    result = parser.parse(packet)
    assert result.accepted
    return result


class TestDeparser:
    def test_unmodified_roundtrip(self):
        packet = make_coflow_packet(3, 1, 5, [(1, 10), (2, 20)])
        result = _parse(packet)
        rebuilt = Deparser().deparse(result.phv, packet)
        assert rebuilt.header("coflow")["coflow_id"] == 3
        assert rebuilt.payload is not None
        assert rebuilt.payload.keys() == [1, 2]
        assert rebuilt.payload.values() == [10, 20]
        assert rebuilt.frame_bytes == packet.frame_bytes

    def test_header_field_modification_applies(self):
        packet = make_coflow_packet(3, 1, 5, [(1, 10)])
        result = _parse(packet)
        result.phv["ipv4.ttl"] = 63
        result.phv["coflow.round"] = 7
        rebuilt = Deparser().deparse(result.phv, packet)
        assert rebuilt.header("ipv4")["ttl"] == 63
        assert rebuilt.header("coflow")["round"] == 7

    def test_array_modification_applies(self):
        packet = make_coflow_packet(1, 1, 0, [(1, 10), (2, 20)])
        result = _parse(packet)
        result.phv.set_array("elems.value", [100, 200])
        rebuilt = Deparser().deparse(result.phv, packet)
        assert rebuilt.payload is not None
        assert rebuilt.payload.values() == [100, 200]

    def test_element_count_header_follows_payload(self):
        packet = make_coflow_packet(1, 1, 0, [(1, 1), (2, 2)])
        result = _parse(packet)
        rebuilt = Deparser().deparse(result.phv, packet)
        assert rebuilt.header("coflow")["element_count"] == 2

    def test_payload_passthrough_without_array_lift(self):
        """When the parser never lifted the array (no coflow header in the
        parse path), the original payload passes through untouched."""
        packet = make_coflow_packet(1, 1, 0, [(5, 50)])
        # Parse only the Ethernet header by rejecting at IPv4 via a
        # non-matching ethertype.
        packet.header("ethernet")["ethertype"] = 0x1234
        parser = Parser(ParseGraph.standard_coflow_graph())
        result = parser.parse(packet)
        assert result.accepted
        rebuilt = Deparser().deparse(result.phv, packet)
        assert rebuilt.payload is not None
        assert rebuilt.payload.keys() == [5]

    def test_metadata_carried_over(self):
        packet = make_coflow_packet(1, 1, 0, [(1, 1)])
        packet.meta.egress_port = 9
        result = _parse(packet)
        rebuilt = Deparser().deparse(result.phv, packet)
        assert rebuilt.meta.egress_port == 9

    def test_counts_deparsed(self):
        deparser = Deparser()
        packet = make_coflow_packet(1, 1, 0, [(1, 1)])
        result = _parse(packet)
        deparser.deparse(result.phv, packet)
        assert deparser.packets_deparsed == 1

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**31),
                st.integers(min_value=0, max_value=2**31),
            ),
            min_size=1,
            max_size=16,
        )
    )
    def test_parse_deparse_identity_property(self, elements):
        """Parsing then deparsing any coflow packet is the identity on
        headers and payload."""
        packet = make_coflow_packet(1, 2, 3, elements)
        result = _parse(packet)
        rebuilt = Deparser().deparse(result.phv, packet)
        assert rebuilt.payload is not None
        assert rebuilt.payload.keys() == [k for k, _ in elements]
        assert rebuilt.payload.values() == [v for _, v in elements]
        for original, copy in zip(packet.headers, rebuilt.headers):
            assert original == copy
