"""Tests for packet parsing (repro.net.parser)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, ParseError
from repro.net.headers import ETHERNET, IPV4, standard_stack
from repro.net.packet import Packet
from repro.net.parser import ParseGraph, Parser, ParseState
from repro.net.traffic import make_coflow_packet


class TestParseGraph:
    def test_standard_graph_validates(self):
        graph = ParseGraph.standard_coflow_graph()
        assert len(graph) == 4
        assert "coflow" in graph

    def test_duplicate_state_rejected(self):
        graph = ParseGraph(start="a")
        graph.add(ParseState("a"))
        with pytest.raises(ConfigError):
            graph.add(ParseState("a"))

    def test_reserved_names_rejected(self):
        graph = ParseGraph()
        with pytest.raises(ConfigError):
            graph.add(ParseState("accept"))

    def test_unknown_transition_target_rejected(self):
        graph = ParseGraph(start="a")
        graph.add(ParseState("a", transitions={"default": "ghost"}))
        with pytest.raises(ConfigError):
            graph.validate()

    def test_missing_start_rejected(self):
        graph = ParseGraph(start="nope")
        graph.add(ParseState("a"))
        with pytest.raises(ConfigError):
            graph.validate()

    def test_next_state_selection(self):
        state = ParseState(
            "s", select_field="f", transitions={5: "five", "default": "other"}
        )
        assert state.next_state(5) == "five"
        assert state.next_state(6) == "other"

    def test_next_state_without_default_rejects(self):
        state = ParseState("s", select_field="f", transitions={5: "five"})
        assert state.next_state(6) == "reject"


class TestParser:
    def test_full_stack_extraction(self):
        parser = Parser(ParseGraph.standard_coflow_graph())
        packet = make_coflow_packet(9, 2, 1, [(10, 100), (11, 110)])
        result = parser.parse(packet)
        assert result.accepted
        assert result.headers_extracted == ("ethernet", "ipv4", "udp", "coflow")
        assert result.phv["coflow.coflow_id"] == 9
        assert result.phv.array("elems.key") == [10, 11]
        assert result.phv.array("elems.value") == [100, 110]

    def test_non_coflow_packet_accepted_early(self):
        parser = Parser(ParseGraph.standard_coflow_graph())
        eth = ETHERNET.instantiate(ethertype=0x86DD)  # not IPv4
        result = parser.parse(Packet([eth]))
        assert result.accepted
        assert result.headers_extracted == ("ethernet",)

    def test_missing_expected_header_rejects(self):
        parser = Parser(ParseGraph.standard_coflow_graph())
        eth = ETHERNET.instantiate(ethertype=0x0800)  # promises IPv4
        result = parser.parse(Packet([eth]))
        assert not result.accepted
        assert parser.packets_rejected == 1

    def test_bytes_examined_counts_headers_and_payload(self):
        parser = Parser(ParseGraph.standard_coflow_graph())
        packet = make_coflow_packet(1, 1, 0, [(1, 1)] * 4)
        result = parser.parse(packet)
        assert result.bytes_examined == 14 + 20 + 8 + 19 + 32

    def test_array_wider_than_state_limit_raises(self):
        graph = ParseGraph.standard_coflow_graph(max_elements=2)
        parser = Parser(graph)
        packet = make_coflow_packet(1, 1, 0, [(i, i) for i in range(4)])
        with pytest.raises(ParseError):
            parser.parse(packet)

    def test_scalar_fallback_extracts_first_element_only(self):
        """array_capable=False models classic RMT's 1-key lift."""
        parser = Parser(ParseGraph.standard_coflow_graph(), array_capable=False)
        packet = make_coflow_packet(1, 1, 0, [(7, 70), (8, 80)])
        result = parser.parse(packet)
        assert result.accepted
        assert result.phv["elems.key[0]"] == 7
        assert result.phv.array_length("elems.key") == 1

    def test_depth_limit_catches_loops(self):
        graph = ParseGraph(start="loop")
        graph.add(ParseState("loop", transitions={"default": "loop"}))
        parser = Parser(graph, max_depth=8)
        with pytest.raises(ParseError):
            parser.parse(Packet(standard_stack()))

    def test_counters(self):
        parser = Parser(ParseGraph.standard_coflow_graph())
        parser.parse(make_coflow_packet(1, 1, 0, [(1, 1)]))
        assert parser.packets_parsed == 1
