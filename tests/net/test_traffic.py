"""Tests for traffic sources (repro.net.traffic)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.net.traffic import (
    DeterministicSource,
    PoissonSource,
    make_coflow_packet,
    merge_sources,
)
from repro.sim.rng import make_rng
from repro.units import BITS_PER_BYTE, GBPS


def _packets(n, elements=1):
    return [
        make_coflow_packet(1, 0, i, [(j, j) for j in range(elements)])
        for i in range(n)
    ]


class TestMakeCoflowPacket:
    def test_header_and_payload_consistency(self):
        packet = make_coflow_packet(4, 2, 7, [(1, 10), (2, 20)], opcode=3)
        header = packet.header("coflow")
        assert header["coflow_id"] == 4
        assert header["flow_id"] == 2
        assert header["seq"] == 7
        assert header["opcode"] == 3
        assert header["element_count"] == 2
        assert packet.element_count == 2


class TestDeterministicSource:
    def test_back_to_back_spacing_equals_wire_time(self):
        packets = _packets(3)
        source = DeterministicSource(0, 100 * GBPS, packets)
        times = [t for t, _ in source.packets()]
        gap = packets[0].wire_bytes * BITS_PER_BYTE / (100 * GBPS)
        assert times[1] - times[0] == pytest.approx(gap)
        assert times[2] - times[1] == pytest.approx(gap)

    def test_stamps_port_and_arrival(self):
        source = DeterministicSource(5, GBPS, _packets(1))
        time, packet = next(iter(source.packets()))
        assert packet.meta.ingress_port == 5
        assert packet.meta.arrival_time == time

    def test_start_time_offset(self):
        source = DeterministicSource(0, GBPS, _packets(1), start_time=1.0)
        time, _ = next(iter(source.packets()))
        assert time == 1.0

    def test_line_rate_total_duration(self):
        """N back-to-back packets occupy exactly N wire times."""
        packets = _packets(10)
        source = DeterministicSource(0, 100 * GBPS, packets)
        times = [t for t, _ in source.packets()]
        wire = packets[0].wire_bytes * BITS_PER_BYTE / (100 * GBPS)
        assert times[-1] == pytest.approx(9 * wire)

    def test_invalid_speed(self):
        with pytest.raises(ConfigError):
            DeterministicSource(0, 0, [])

    def test_invalid_port(self):
        with pytest.raises(ConfigError):
            DeterministicSource(-1, GBPS, [])


class TestPoissonSource:
    def test_mean_rate_approximates_load(self):
        packets = _packets(2000)
        source = PoissonSource(0, 100 * GBPS, packets, load=0.5, rng=make_rng(1))
        times = [t for t, _ in source.packets()]
        duration = times[-1]
        wire_bits = sum(p.wire_bytes for p in packets) * BITS_PER_BYTE
        achieved_load = wire_bits / (100 * GBPS * duration)
        assert achieved_load == pytest.approx(0.5, rel=0.1)

    def test_times_are_increasing(self):
        source = PoissonSource(0, GBPS, _packets(100), load=0.9, rng=make_rng(2))
        times = [t for t, _ in source.packets()]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_invalid_load(self):
        with pytest.raises(ConfigError):
            PoissonSource(0, GBPS, [], load=0.0, rng=make_rng())
        with pytest.raises(ConfigError):
            PoissonSource(0, GBPS, [], load=1.5, rng=make_rng())

    def test_empty_stream(self):
        source = PoissonSource(0, GBPS, [], load=0.5, rng=make_rng())
        assert list(source.packets()) == []


class TestMergeSources:
    def test_global_time_order(self):
        fast = DeterministicSource(0, 100 * GBPS, _packets(5))
        slow = DeterministicSource(1, 10 * GBPS, _packets(5))
        merged = list(merge_sources([fast, slow]))
        times = [t for t, _ in merged]
        assert times == sorted(times)
        assert len(merged) == 10

    def test_preserves_per_source_order(self):
        a = DeterministicSource(0, GBPS, _packets(3))
        merged = list(merge_sources([a]))
        seqs = [p.header("coflow")["seq"] for _, p in merged]
        assert seqs == [0, 1, 2]

    def test_empty_sources_ok(self):
        a = DeterministicSource(0, GBPS, [])
        assert list(merge_sources([a])) == []
