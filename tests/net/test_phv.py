"""Tests for the packet header vector (repro.net.phv)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.net.phv import PHV, ContainerClass, PHVLayout


class TestContainerClass:
    def test_width_selection(self):
        assert ContainerClass.for_width(1) is ContainerClass.BYTE
        assert ContainerClass.for_width(8) is ContainerClass.BYTE
        assert ContainerClass.for_width(9) is ContainerClass.HALF
        assert ContainerClass.for_width(16) is ContainerClass.HALF
        assert ContainerClass.for_width(17) is ContainerClass.WORD
        assert ContainerClass.for_width(48) is ContainerClass.WORD


class TestPHVLayout:
    def test_default_capacity(self):
        layout = PHVLayout()
        assert layout.capacity(ContainerClass.BYTE) == 64
        assert layout.total_bits == 64 * 8 + 96 * 16 + 64 * 32


class TestPHVAllocation:
    def test_allocate_and_access(self):
        phv = PHV()
        phv.allocate("eth.type", 16, 0x800)
        assert phv["eth.type"] == 0x800
        phv["eth.type"] = 0x806
        assert phv["eth.type"] == 0x806
        assert "eth.type" in phv

    def test_wide_field_spans_word_containers(self):
        phv = PHV()
        phv.allocate("eth.dst", 48)
        assert phv.used(ContainerClass.WORD) == 2

    def test_double_allocation_rejected(self):
        phv = PHV()
        phv.allocate("f", 8)
        with pytest.raises(ConfigError):
            phv.allocate("f", 8)

    def test_unallocated_access_rejected(self):
        phv = PHV()
        with pytest.raises(ConfigError):
            _ = phv["missing"]
        with pytest.raises(ConfigError):
            phv["missing"] = 1

    def test_capacity_exhaustion(self):
        phv = PHV(PHVLayout(byte_containers=2, half_containers=0, word_containers=0))
        phv.allocate("a", 8)
        phv.allocate("b", 8)
        with pytest.raises(ConfigError):
            phv.allocate("c", 8)

    def test_get_with_default(self):
        phv = PHV()
        assert phv.get("missing") is None
        assert phv.get("missing", 7) == 7

    def test_used_bits_accounting(self):
        phv = PHV()
        phv.allocate("a", 8)
        phv.allocate("b", 16)
        phv.allocate("c", 32)
        assert phv.used_bits == 8 + 16 + 32


class TestPHVArrays:
    def test_allocate_array_and_roundtrip(self):
        phv = PHV()
        phv.allocate_array("k", 4)
        phv.set_array("k", [1, 2, 3, 4])
        assert phv.array("k") == [1, 2, 3, 4]
        assert phv.array_length("k") == 4
        assert phv["k[2]"] == 3

    def test_array_length_mismatch_rejected(self):
        phv = PHV()
        phv.allocate_array("k", 3)
        with pytest.raises(ConfigError):
            phv.set_array("k", [1, 2])

    def test_unknown_array_rejected(self):
        phv = PHV()
        with pytest.raises(ConfigError):
            phv.array("nope")

    def test_zero_length_array_rejected(self):
        phv = PHV()
        with pytest.raises(ConfigError):
            phv.allocate_array("k", 0)

    def test_array_consumes_word_containers(self):
        """A 16-wide array eats 16 word containers — the PHV budget is a
        real constraint on array width, as section 3.2 anticipates."""
        phv = PHV(PHVLayout(word_containers=16))
        phv.allocate_array("k", 16)
        with pytest.raises(ConfigError):
            phv.allocate("extra", 32)

    @given(st.lists(st.integers(min_value=0, max_value=2**31), min_size=1, max_size=16))
    def test_array_roundtrip_property(self, values):
        phv = PHV()
        phv.allocate_array("v", len(values))
        phv.set_array("v", values)
        assert phv.array("v") == values


class TestPHVMetadata:
    def test_meta_is_separate_namespace(self):
        phv = PHV()
        phv.set_meta("egress_port", 3)
        assert phv.get_meta("egress_port") == 3
        assert phv.get_meta("missing") is None
        assert phv.has_meta("egress_port")
        assert "egress_port" not in phv  # not a container field

    def test_meta_not_charged_against_containers(self):
        phv = PHV(PHVLayout(byte_containers=0, half_containers=0, word_containers=0))
        phv.set_meta("drop", 1)
        assert phv.get_meta("drop") == 1
