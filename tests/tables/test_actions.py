"""Tests for action primitives (repro.tables.actions)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, TableError
from repro.net.phv import PHV
from repro.tables.actions import (
    Action,
    ActionContext,
    ActionOp,
    ActionPrimitive,
    DropAction,
    ForwardAction,
    NoAction,
)
from repro.tables.registers import RegisterArray


def _ctx(**registers) -> ActionContext:
    phv = PHV()
    phv.allocate("a", 32, 10)
    phv.allocate("b", 32, 3)
    phv.allocate("idx", 16, 1)
    return ActionContext(phv, dict(registers))


class TestPrimitives:
    def test_set_const(self):
        ctx = _ctx()
        ActionPrimitive(ActionOp.SET_CONST, dst="a", immediate=99).execute(ctx)
        assert ctx.phv["a"] == 99

    def test_copy(self):
        ctx = _ctx()
        ActionPrimitive(ActionOp.COPY, dst="a", src="b").execute(ctx)
        assert ctx.phv["a"] == 3

    def test_arithmetic_with_field_operand(self):
        ctx = _ctx()
        ActionPrimitive(ActionOp.ADD, dst="a", src="b").execute(ctx)
        assert ctx.phv["a"] == 13

    def test_arithmetic_with_immediate(self):
        ctx = _ctx()
        ActionPrimitive(ActionOp.SUB, dst="a", immediate=4).execute(ctx)
        assert ctx.phv["a"] == 6

    def test_min_max_and_or_xor(self):
        for op, expected in (
            (ActionOp.MIN, 3),
            (ActionOp.MAX, 10),
            (ActionOp.AND, 10 & 3),
            (ActionOp.OR, 10 | 3),
            (ActionOp.XOR, 10 ^ 3),
        ):
            ctx = _ctx()
            ActionPrimitive(op, dst="a", src="b").execute(ctx)
            assert ctx.phv["a"] == expected, op

    def test_register_read_write(self):
        reg = RegisterArray("r", 4)
        ctx = _ctx(r=reg)
        ActionPrimitive(
            ActionOp.REG_WRITE, register="r", index_field="idx", src="a"
        ).execute(ctx)
        assert reg.read(1) == 10
        ActionPrimitive(
            ActionOp.REG_READ, dst="b", register="r", index_field="idx"
        ).execute(ctx)
        assert ctx.phv["b"] == 10

    def test_register_add_returns_to_phv(self):
        reg = RegisterArray("r", 4)
        ctx = _ctx(r=reg)
        ActionPrimitive(
            ActionOp.REG_ADD, dst="b", register="r", index_field="idx", src="a"
        ).execute(ctx)
        assert reg.read(1) == 10
        assert ctx.phv["b"] == 10

    def test_register_min_max(self):
        reg = RegisterArray("r", 2)
        reg.write(0, 7)
        ctx = _ctx(r=reg)
        ActionPrimitive(
            ActionOp.REG_MIN, dst="b", register="r", immediate=0, src="b"
        ).execute(ctx)
        assert ctx.phv["b"] == 3

    def test_constant_register_index(self):
        reg = RegisterArray("r", 4)
        ctx = _ctx(r=reg)
        ActionPrimitive(
            ActionOp.REG_WRITE, register="r", immediate=2, src="a"
        ).execute(ctx)
        assert reg.read(2) == 10

    def test_unknown_register_raises(self):
        ctx = _ctx()
        prim = ActionPrimitive(ActionOp.REG_READ, dst="a", register="ghost")
        with pytest.raises(TableError):
            prim.execute(ctx)

    def test_construction_validation(self):
        with pytest.raises(ConfigError):
            ActionPrimitive(ActionOp.REG_ADD)  # no register
        with pytest.raises(ConfigError):
            ActionPrimitive(ActionOp.SET_CONST)  # no dst
        with pytest.raises(ConfigError):
            ActionPrimitive(ActionOp.COPY, dst="a")  # no src


class TestActions:
    def test_primitives_run_in_order(self):
        ctx = _ctx()
        action = Action(
            "seq",
            [
                ActionPrimitive(ActionOp.SET_CONST, dst="a", immediate=1),
                ActionPrimitive(ActionOp.ADD, dst="a", immediate=2),
            ],
        )
        action.execute(ctx)
        assert ctx.phv["a"] == 3
        assert len(action) == 2

    def test_slot_budget_enforced(self):
        prims = [
            ActionPrimitive(ActionOp.ADD, dst="a", immediate=1) for _ in range(4)
        ]
        with pytest.raises(ConfigError):
            Action("too_wide", prims, slots=3)

    def test_no_action_is_identity(self):
        ctx = _ctx()
        NoAction().execute(ctx)
        assert ctx.phv["a"] == 10

    def test_drop_action_sets_meta(self):
        ctx = _ctx()
        DropAction("policy").execute(ctx)
        assert ctx.phv.get_meta("drop") == 1
        assert ctx.phv.get_meta("drop_reason") == "policy"

    def test_forward_action_sets_port(self):
        ctx = _ctx()
        ForwardAction(7).execute(ctx)
        assert ctx.phv.get_meta("egress_port") == 7

    def test_forward_action_validation(self):
        with pytest.raises(ConfigError):
            ForwardAction(-1)
