"""Tests for match tables (repro.tables.mat)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigError, TableError
from repro.tables.actions import NoAction
from repro.tables.mat import MatchKind, MatchTable, TernaryPattern
from repro.tables.memory import MemoryKind, StageMemory


class TestTernaryPattern:
    def test_exact_pattern(self):
        pattern = TernaryPattern.exact(0xAB, 8)
        assert pattern.matches(0xAB)
        assert not pattern.matches(0xAC)

    def test_masked_match(self):
        pattern = TernaryPattern(0b1010_0000, 0b1111_0000)
        assert pattern.matches(0b1010_1111)
        assert not pattern.matches(0b1011_0000)

    def test_prefix_pattern(self):
        pattern = TernaryPattern.prefix(0xC0A80000, 16, 32)
        assert pattern.matches(0xC0A81234)
        assert not pattern.matches(0xC0A91234)
        assert pattern.prefix_length == 16

    def test_zero_prefix_matches_all(self):
        pattern = TernaryPattern.prefix(0, 0, 32)
        assert pattern.matches(12345)

    def test_invalid_prefix_len(self):
        with pytest.raises(ConfigError):
            TernaryPattern.prefix(0, 33, 32)


class TestExactTable:
    def test_install_and_lookup(self):
        table = MatchTable("t", MatchKind.EXACT, 32, 16)
        table.install(5)
        result = table.lookup(5)
        assert result.hit
        assert result.entry is not None and result.entry.hits == 1

    def test_miss_runs_default(self):
        table = MatchTable("t", MatchKind.EXACT, 32, 16)
        result = table.lookup(99)
        assert not result.hit
        assert isinstance(result.action, NoAction)
        assert table.misses == 1

    def test_duplicate_key_rejected(self):
        table = MatchTable("t", MatchKind.EXACT, 32, 16)
        table.install(5)
        with pytest.raises(TableError):
            table.install(5)

    def test_partial_mask_rejected(self):
        table = MatchTable("t", MatchKind.EXACT, 32, 16)
        with pytest.raises(TableError):
            table.install(TernaryPattern(5, 0xFF))

    def test_capacity_enforced(self):
        table = MatchTable("t", MatchKind.EXACT, 32, 2)
        table.install(1)
        table.install(2)
        with pytest.raises(CapacityError):
            table.install(3)

    def test_remove(self):
        table = MatchTable("t", MatchKind.EXACT, 32, 4)
        entry = table.install(1)
        table.remove(entry)
        assert not table.lookup(1).hit
        with pytest.raises(TableError):
            table.remove(entry)

    def test_hit_rate(self):
        table = MatchTable("t", MatchKind.EXACT, 32, 4)
        table.install(1)
        table.lookup(1)
        table.lookup(2)
        assert table.hit_rate == pytest.approx(0.5)
        assert MatchTable("e", MatchKind.EXACT, 32, 4).hit_rate == 0.0

    @given(st.sets(st.integers(min_value=0, max_value=2**31), min_size=1, max_size=64))
    def test_all_installed_keys_hit(self, keys):
        table = MatchTable("t", MatchKind.EXACT, 32, len(keys))
        for key in keys:
            table.install(key)
        assert all(table.lookup(key).hit for key in keys)


class TestTernaryTable:
    def test_priority_resolution(self):
        table = MatchTable("t", MatchKind.TERNARY, 8, 8)
        low = table.install(TernaryPattern(0, 0), priority=1)
        high = table.install(TernaryPattern(0b10, 0b10), priority=5)
        result = table.lookup(0b10)
        assert result.entry is high
        assert table.lookup(0b01).entry is low


class TestLpmTable:
    def test_longest_prefix_wins(self):
        table = MatchTable("t", MatchKind.LPM, 32, 8)
        short = table.install(TernaryPattern.prefix(0x0A000000, 8, 32))
        long = table.install(TernaryPattern.prefix(0x0A0A0000, 16, 32))
        assert table.lookup(0x0A0A0001).entry is long
        assert table.lookup(0x0A0B0001).entry is short


class TestMemoryBacking:
    def test_blocks_claimed_on_construction(self):
        memory = StageMemory(sram_blocks=4)
        table = MatchTable("t", MatchKind.EXACT, 112, 2048, memory=memory)
        assert table.blocks_claimed == 2
        assert memory.free_blocks(MemoryKind.SRAM) == 2

    def test_ternary_claims_tcam(self):
        memory = StageMemory(tcam_blocks=4)
        MatchTable("t", MatchKind.TERNARY, 40, 2048, memory=memory)
        assert memory.free_blocks(MemoryKind.TCAM) == 3

    def test_release_returns_blocks(self):
        memory = StageMemory(sram_blocks=4)
        table = MatchTable("t", MatchKind.EXACT, 112, 1024, memory=memory)
        table.release()
        assert memory.free_blocks(MemoryKind.SRAM) == 4

    def test_oversubscription_fails_fast(self):
        memory = StageMemory(sram_blocks=1)
        with pytest.raises(CapacityError):
            MatchTable("t", MatchKind.EXACT, 112, 1 << 20, memory=memory)


class TestBatchLookup:
    def test_lookup_many_matches_sequential(self):
        table = MatchTable("t", MatchKind.EXACT, 32, 16)
        for key in (1, 2, 3):
            table.install(key)
        results = table.lookup_many([1, 9, 3])
        assert [r.hit for r in results] == [True, False, True]
        assert table.lookups == 3
