"""Tests for stage memory pools (repro.tables.memory)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigError
from repro.tables.memory import (
    DEFAULT_SRAM_BLOCK,
    MemoryBlock,
    MemoryKind,
    StageMemory,
)


class TestMemoryBlock:
    def test_bits(self):
        block = MemoryBlock(MemoryKind.SRAM, 1024, 112)
        assert block.bits == 1024 * 112

    def test_validation(self):
        with pytest.raises(ConfigError):
            MemoryBlock(MemoryKind.SRAM, 0, 112)
        with pytest.raises(ConfigError):
            MemoryBlock(MemoryKind.SRAM, 1024, 0)


class TestBlocksNeeded:
    def test_single_block_table(self):
        memory = StageMemory()
        assert memory.blocks_needed(MemoryKind.SRAM, 1024, 112) == 1

    def test_wide_key_spans_blocks(self):
        memory = StageMemory()
        # 113-bit key needs 2 blocks side by side.
        assert memory.blocks_needed(MemoryKind.SRAM, 1024, 113) == 2

    def test_deep_table_stacks_blocks(self):
        memory = StageMemory()
        assert memory.blocks_needed(MemoryKind.SRAM, 2048, 112) == 2

    def test_wide_and_deep_multiplies(self):
        memory = StageMemory()
        assert memory.blocks_needed(MemoryKind.SRAM, 2048, 224) == 4

    def test_validation(self):
        memory = StageMemory()
        with pytest.raises(ConfigError):
            memory.blocks_needed(MemoryKind.SRAM, 0, 32)
        with pytest.raises(ConfigError):
            memory.blocks_needed(MemoryKind.SRAM, 10, 0)

    @given(
        st.integers(min_value=1, max_value=100000),
        st.integers(min_value=1, max_value=400),
    )
    def test_blocks_cover_request(self, entries, width):
        """The claimed geometry always covers the requested bits."""
        memory = StageMemory()
        blocks = memory.blocks_needed(MemoryKind.SRAM, entries, width)
        geo = DEFAULT_SRAM_BLOCK
        wide = (width + geo.width_bits - 1) // geo.width_bits
        assert blocks * geo.entries * geo.width_bits >= entries * width
        assert blocks % wide == 0


class TestClaimRelease:
    def test_claim_reduces_free(self):
        memory = StageMemory(sram_blocks=10)
        claimed = memory.claim("t1", MemoryKind.SRAM, 2048, 112)
        assert claimed == 2
        assert memory.free_blocks(MemoryKind.SRAM) == 8
        assert memory.claimed_blocks(MemoryKind.SRAM) == 2
        assert memory.utilization(MemoryKind.SRAM) == pytest.approx(0.2)

    def test_release_returns_blocks(self):
        memory = StageMemory(sram_blocks=10)
        memory.claim("t1", MemoryKind.SRAM, 1024, 112)
        memory.release("t1")
        assert memory.free_blocks(MemoryKind.SRAM) == 10

    def test_over_claim_raises(self):
        memory = StageMemory(sram_blocks=1)
        with pytest.raises(CapacityError):
            memory.claim("big", MemoryKind.SRAM, 10240, 112)

    def test_duplicate_owner_rejected(self):
        memory = StageMemory()
        memory.claim("t", MemoryKind.SRAM, 1024, 112)
        with pytest.raises(ConfigError):
            memory.claim("t", MemoryKind.SRAM, 1024, 112)

    def test_release_unknown_owner_rejected(self):
        with pytest.raises(ConfigError):
            StageMemory().release("ghost")

    def test_tcam_pool_independent(self):
        memory = StageMemory(sram_blocks=4, tcam_blocks=2)
        memory.claim("exact", MemoryKind.SRAM, 1024, 112)
        memory.claim("lpm", MemoryKind.TCAM, 2048, 40)
        assert memory.free_blocks(MemoryKind.SRAM) == 3
        assert memory.free_blocks(MemoryKind.TCAM) == 1

    def test_max_entries(self):
        memory = StageMemory(sram_blocks=4)
        assert memory.max_entries(MemoryKind.SRAM, 112) == 4 * 1024
        assert memory.max_entries(MemoryKind.SRAM, 224) == 2 * 1024
        memory.claim("t", MemoryKind.SRAM, 1024, 112)
        assert memory.max_entries(MemoryKind.SRAM, 112) == 3 * 1024

    def test_replication_consumes_real_blocks(self):
        """Figure 3: k replicas cost k times the blocks — until the pool
        runs out."""
        memory = StageMemory(sram_blocks=8)
        for replica in range(8):
            memory.claim(f"copy{replica}", MemoryKind.SRAM, 1024, 112)
        with pytest.raises(CapacityError):
            memory.claim("copy8", MemoryKind.SRAM, 1024, 112)
