"""Tests for stateful registers (repro.tables.registers)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError, TableError
from repro.tables.registers import RegisterArray


class TestBasics:
    def test_initially_zero(self):
        reg = RegisterArray("r", 8)
        assert reg.read(0) == 0
        assert len(reg) == 8

    def test_write_read(self):
        reg = RegisterArray("r", 8)
        reg.write(3, 42)
        assert reg.read(3) == 42

    def test_out_of_range_index(self):
        reg = RegisterArray("r", 4)
        with pytest.raises(TableError):
            reg.read(4)
        with pytest.raises(TableError):
            reg.write(-1, 0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RegisterArray("r", 0)
        with pytest.raises(ConfigError):
            RegisterArray("r", 4, width_bits=65)

    def test_bits_accounting(self):
        assert RegisterArray("r", 1024, 32).bits == 32768


class TestWrapping:
    def test_width_mask_on_write(self):
        reg = RegisterArray("r", 2, width_bits=8)
        reg.write(0, 0x1FF)
        assert reg.read(0) == 0xFF

    def test_add_wraps_at_width(self):
        reg = RegisterArray("r", 2, width_bits=8)
        reg.write(0, 250)
        assert reg.add(0, 10) == 4  # (250 + 10) mod 256

    def test_one_bit_register_behaves_as_flag(self):
        reg = RegisterArray("r", 4, width_bits=1)
        reg.write(2, 1)
        assert reg.read(2) == 1
        reg.write(2, 2)  # masked
        assert reg.read(2) == 0


class TestRmwOps:
    def test_add_returns_new_value(self):
        reg = RegisterArray("r", 2)
        assert reg.add(0, 5) == 5
        assert reg.add(0, 7) == 12

    def test_merge_min_max(self):
        reg = RegisterArray("r", 1)
        reg.write(0, 10)
        assert reg.merge_min(0, 5) == 5
        assert reg.merge_max(0, 20) == 20
        assert reg.merge_min(0, 100) == 20

    def test_read_write_counters(self):
        reg = RegisterArray("r", 2)
        reg.read(0)
        reg.write(0, 1)
        reg.add(0, 1)
        assert reg.reads == 2
        assert reg.writes == 2


class TestBulkOps:
    def test_read_many(self):
        reg = RegisterArray("r", 4)
        reg.write(1, 10)
        reg.write(3, 30)
        assert reg.read_many([1, 3, 0]) == [10, 30, 0]

    def test_add_many_accumulates_duplicates_in_order(self):
        reg = RegisterArray("r", 4)
        results = reg.add_many([0, 0, 1], [1, 2, 5])
        assert results == [1, 3, 5]
        assert reg.read(0) == 3

    def test_add_many_length_mismatch(self):
        reg = RegisterArray("r", 4)
        with pytest.raises(TableError):
            reg.add_many([0, 1], [1])

    def test_snapshot_and_load(self):
        reg = RegisterArray("r", 4)
        reg.load([1, 2, 3, 4])
        snap = reg.snapshot()
        assert list(snap) == [1, 2, 3, 4]
        reg.write(0, 99)
        assert snap[0] == 1  # snapshot is a copy

    def test_load_shape_checked(self):
        reg = RegisterArray("r", 4)
        with pytest.raises(ConfigError):
            reg.load([1, 2])

    def test_load_masks_width(self):
        reg = RegisterArray("r", 2, width_bits=4)
        reg.load([0xFF, 0x0F])
        assert reg.read(0) == 0x0F

    def test_reset(self):
        reg = RegisterArray("r", 2)
        reg.write(0, 5)
        reg.reset()
        assert reg.read(0) == 0


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2**31), min_size=1, max_size=64))
    def test_sum_of_adds_equals_total_mod_width(self, values):
        """Aggregation correctness: the accumulator equals the sum of all
        contributions modulo the register width."""
        reg = RegisterArray("r", 1, width_bits=64)
        for value in values:
            reg.add(0, value)
        assert reg.read(0) == sum(values) & ((1 << 64) - 1)

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50)
    )
    def test_merge_max_is_running_maximum(self, values):
        reg = RegisterArray("r", 1, width_bits=32)
        for value in values:
            reg.merge_max(0, value)
        assert reg.read(0) == max(values)
