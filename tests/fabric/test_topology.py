"""Topology generators, validation, and equal-cost routing tables."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fabric import (
    Topology,
    fat_tree,
    host_ip,
    leaf_spine,
    parse_topology,
)
from repro.fabric.topology import Host, SwitchNode, host_of_ip


class TestLeafSpine:
    def test_default_shape(self):
        topo = leaf_spine(2, 2)
        assert topo.name == "leaf-spine-2x2"
        assert topo.tier("leaf") == ["leaf0", "leaf1"]
        assert topo.tier("spine") == ["spine0", "spine1"]
        assert topo.host_ids == [0, 1, 2, 3]

    def test_every_leaf_uplinks_to_every_spine(self):
        topo = leaf_spine(3, 2)
        for leaf in topo.tier("leaf"):
            assert topo.switches[leaf].neighbors() == ["spine0", "spine1"]
        for spine in topo.tier("spine"):
            assert topo.switches[spine].neighbors() == [
                "leaf0",
                "leaf1",
                "leaf2",
            ]

    def test_hosts_per_leaf_override_changes_name_and_count(self):
        topo = leaf_spine(2, 2, hosts_per_leaf=4)
        assert topo.name == "leaf-spine-2x2x4"
        assert len(topo.hosts) == 8
        assert all(
            topo.hosts[h].switch == f"leaf{h // 4}" for h in topo.host_ids
        )

    def test_rejects_empty_dimensions(self):
        with pytest.raises(ConfigError, match="at least one"):
            leaf_spine(0, 2)


class TestFatTree:
    def test_k4_counts(self):
        topo = fat_tree(4)
        assert topo.name == "fat-tree-k4"
        assert len(topo.switches) == 20  # 8 edge + 8 agg + 4 core
        assert len(topo.tier("edge")) == 8
        assert len(topo.tier("agg")) == 8
        assert len(topo.tier("core")) == 4
        assert len(topo.hosts) == 16  # k^3 / 4

    def test_k8_counts(self):
        topo = fat_tree(8)
        assert len(topo.switches) == 80  # 5k^2/4
        assert len(topo.hosts) == 128  # k^3/4

    def test_odd_arity_rejected(self):
        with pytest.raises(ConfigError, match="even"):
            fat_tree(3)

    def test_core_reaches_every_pod(self):
        topo = fat_tree(4)
        for core in topo.tier("core"):
            peers = topo.switches[core].neighbors()
            pods = {peer.split("-")[0][len("agg"):] for peer in peers}
            assert pods == {"0", "1", "2", "3"}


class TestValidation:
    def test_asymmetric_link_rejected(self):
        a = SwitchNode("a", "leaf", 1, links={0: ("b", 0)})
        b = SwitchNode("b", "leaf", 1, links={0: ("a", 1)})
        with pytest.raises(ConfigError, match="not.*symmetric"):
            Topology("bad", {"a": a, "b": b}, {})

    def test_unwired_port_rejected(self):
        a = SwitchNode("a", "leaf", 2, links={0: ("b", 0)})
        b = SwitchNode("b", "leaf", 1, links={0: ("a", 0)})
        with pytest.raises(ConfigError, match="only 1 are wired"):
            Topology("bad", {"a": a, "b": b}, {})

    def test_host_must_be_wired_back(self):
        a = SwitchNode("a", "leaf", 1, links={0: ("b", 0)})
        b = SwitchNode("b", "leaf", 1, links={0: ("a", 0)})
        with pytest.raises(ConfigError, match="does not wire it back"):
            Topology("bad", {"a": a, "b": b}, {0: Host(0, "a", 5)})

    def test_disconnected_topology_rejected_at_routing(self):
        a = SwitchNode("a", "leaf", 1, host_ports={0: 0})
        b = SwitchNode("b", "leaf", 1, host_ports={0: 1})
        topo = Topology(
            "split",
            {"a": a, "b": b},
            {0: Host(0, "a", 0), 1: Host(1, "b", 0)},
        )
        with pytest.raises(ConfigError, match="disconnected"):
            topo.routes()


class TestRoutes:
    def test_leaf_spine_equal_cost_uplinks(self):
        topo = leaf_spine(2, 2)
        tables = topo.routes()
        # leaf0 -> leaf1 crosses either spine: both uplink ports.
        assert tables["leaf0"].to_switch["leaf1"] == (2, 3)
        # leaf0 -> spine0 is the direct uplink only.
        assert tables["leaf0"].to_switch["spine0"] == (2,)
        # Local host: the access port; remote host: the uplink set.
        assert tables["leaf0"].to_host[0] == (0,)
        assert tables["leaf0"].to_host[2] == (2, 3)

    def test_fat_tree_intra_pod_stays_in_pod(self):
        topo = fat_tree(4)
        tables = topo.routes()
        # edge0-0 -> edge0-1 goes up to either aggregation in pod 0.
        ports = tables["edge0-0"].to_switch["edge0-1"]
        peers = {topo.switches["edge0-0"].links[p][0] for p in ports}
        assert peers == {"agg0-0", "agg0-1"}


class TestParseAndAddressing:
    def test_parse_round_trip(self):
        assert parse_topology("leaf-spine-2x2").name == "leaf-spine-2x2"
        assert parse_topology("leaf-spine-4x2x1").name == "leaf-spine-4x2x1"
        assert parse_topology("fat-tree-k4").name == "fat-tree-k4"

    def test_parse_rejects_garbage(self):
        for bad in ("ring-4", "leaf-spine-", "fat-tree-kX", "leaf-spine-2"):
            with pytest.raises(ConfigError, match="unknown topology"):
                parse_topology(bad)

    def test_host_ip_reserves_zero(self):
        assert host_ip(0) == 1
        assert host_of_ip(0) is None
        assert host_of_ip(host_ip(7)) == 7
