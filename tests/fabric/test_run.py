"""End-to-end fabric runs: delivery, placement, determinism, CLI."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.errors import ConfigError
from repro.fabric import run_fabric
from repro.fabric.routing import FlowletSelector


class TestEndToEnd:
    @pytest.mark.parametrize("target", ["adcp", "rmt"])
    def test_allreduce_crosses_switches_and_verifies(self, target):
        run = run_fabric("leaf-spine-2x2", "fabric-allreduce", target=target)
        # Workers sit under different leaves, so aggregation traffic
        # must cross at least one switch-to-switch wire.
        assert run.transit_packets > 0
        assert run.injected > 0
        assert run.delivered_to_hosts > 0
        assert len(run.sections) == 4  # 2 leaves + 2 spines
        # run_fabric itself verifies the aggregate values; every coflow
        # must also have a finite completion time.
        assert set(run.cct_s) == {1, 2}
        assert all(cct > 0 for cct in run.cct_s.values())

    @pytest.mark.parametrize("target", ["adcp", "rmt"])
    def test_shuffle_delivers_to_reducers(self, target):
        run = run_fabric("leaf-spine-2x2", "fabric-shuffle", target=target)
        assert run.transit_packets > 0
        # Shuffle has no hosted aggregation: placement is moot.
        assert run.placement == ""
        assert run.placement_map == {}
        assert all(cct > 0 for cct in run.cct_s.values())

    def test_fat_tree_k4_end_to_end(self):
        run = run_fabric("fat-tree-k4", "fabric-allreduce")
        assert len(run.sections) == 20
        assert run.transit_packets > 0
        ledger = run.ledger()
        labels = [s["label"] for s in ledger["sections"]]
        assert "fabric" in labels and "core0-0" in labels
        assert ledger["workload"] == (
            "fabric:fabric-allreduce@fat-tree-k4:adcp"
        )

    def test_rejects_unknown_target_and_topology(self):
        with pytest.raises(ConfigError, match="rmt or adcp"):
            run_fabric("leaf-spine-2x2", target="tofino")
        with pytest.raises(ConfigError, match="unknown topology"):
            run_fabric("ring-9")


class TestPlacement:
    def test_placements_choose_different_switches(self):
        ingress = run_fabric("leaf-spine-2x2", placement="ingress")
        central = run_fabric("leaf-spine-2x2", placement="central")
        assert set(ingress.placement_map.values()) <= {"leaf0", "leaf1"}
        assert set(central.placement_map.values()) <= {"spine0", "spine1"}

    def test_placement_changes_coflow_completion_time(self):
        """The acceptance criterion: state placement is a measurable
        CCT knob at fabric scale."""
        ingress = run_fabric("leaf-spine-2x2", placement="ingress")
        central = run_fabric("leaf-spine-2x2", placement="central")
        assert ingress.max_cct_s != central.max_cct_s


class TestRoutingModes:
    def test_flowlet_run_keeps_intra_flowlet_order(self):
        run = run_fabric(
            "leaf-spine-2x2", "fabric-shuffle", routing="flowlet"
        )
        histories = 0
        for selector in run.selectors.values():
            assert isinstance(selector, FlowletSelector)
            for picks in selector.history.values():
                if len(picks) < 2:
                    continue
                histories += 1
                last_port = picks[0][1]
                flowlet_start = 0
                for i, (seq, port) in enumerate(picks):
                    if port != last_port:
                        flowlet_start = i
                        last_port = port
                    # Within the current flowlet, seq stays monotonic.
                    window = [s for s, _ in picks[flowlet_start : i + 1]]
                    assert window == sorted(window)
        assert histories > 0  # at least one multi-packet flow routed

    def test_ecmp_spreads_uplink_traffic(self):
        run = run_fabric(
            "leaf-spine-4x2", "fabric-shuffle", routing="ecmp", coflows=4
        )
        uplinks = {
            name: link.packets
            for name, link in run.links.items()
            if "->spine" in name and link.packets > 0
        }
        # Multiple flows hash over two spines: both see traffic.
        spines_used = {name.split("->")[1] for name in uplinks}
        assert spines_used == {"spine0", "spine1"}


class TestDeterminism:
    def test_same_seed_same_ledger_bytes(self):
        a = run_fabric("leaf-spine-2x2", seed=5).ledger()
        b = run_fabric("leaf-spine-2x2", seed=5).ledger()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_different_seed_different_ledger(self):
        a = run_fabric("leaf-spine-2x2", seed=5).ledger()
        b = run_fabric("leaf-spine-2x2", seed=6).ledger()
        assert json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True)


class TestCampaignCell:
    def test_fabric_cell_returns_a_ledger(self):
        from repro.campaign import run_cell

        ledger = run_cell(
            "fabric", {"topology": "leaf-spine-2x2", "seed": 3}
        )
        assert ledger["schema"].startswith("repro.run_ledger")
        fabric = [
            s for s in ledger["sections"] if s["label"] == "fabric"
        ]
        assert len(fabric) == 1
        assert fabric[0]["max_cct_s"] > 0
        assert "cct.max_s" in fabric[0]["series"]

    def test_fabric_cell_rejects_unknown_parameters(self):
        from repro.campaign import run_cell

        with pytest.raises(ConfigError, match="unknown parameters"):
            run_cell("fabric", {"seed": 1, "fanout": 9})


class TestCli:
    def test_fabric_subcommand_json(self, capsys):
        assert main(["fabric", "leaf-spine-2x2", "fabric-allreduce",
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["topology"] == "leaf-spine-2x2"
        assert summary["delivered_to_hosts"] > 0
        assert summary["transit_packets"] > 0

    def test_fabric_subcommand_writes_ledger(self, tmp_path, capsys):
        out = tmp_path / "fabric.json"
        assert main(["fabric", "fat-tree-k4", "fabric-allreduce",
                     "--ledger", str(out)]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        assert document["schema"].startswith("repro.run_ledger")
        assert len(document["sections"]) == 21

    def test_fabric_subcommand_rejects_bad_input(self, capsys):
        assert main(["fabric", "ring-4", "fabric-allreduce"]) != 0
        capsys.readouterr()
        assert main(["fabric", "leaf-spine-2x2", "nope"]) != 0
