"""Path selectors: ECMP distribution, flowlet stickiness, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fabric import EcmpSelector, FlowletSelector, make_selector
from repro.net.headers import OP_DATA, coflow_header, standard_stack
from repro.net.packet import Packet


def _packet(coflow_id: int, flow_id: int, seq: int = 0) -> Packet:
    return Packet(
        standard_stack()
        + [coflow_header(coflow_id, flow_id, seq=seq, opcode=OP_DATA)]
    )


class TestEcmp:
    def test_flow_sticks_to_one_path(self):
        selector = EcmpSelector(salt=7)
        picks = {
            selector.choose(_packet(1, 1, seq), (2, 3, 4, 5), 0.0)
            for seq in range(50)
        }
        assert len(picks) == 1

    def test_flows_spread_over_candidates(self):
        selector = EcmpSelector(salt=7)
        counts = {2: 0, 3: 0, 4: 0, 5: 0}
        flows = 400
        for flow in range(flows):
            counts[selector.choose(_packet(1, flow), (2, 3, 4, 5), 0.0)] += 1
        # Fair hashing: every port gets within 2x of the ideal share.
        ideal = flows / 4
        for port, count in counts.items():
            assert ideal / 2 <= count <= ideal * 2, (port, counts)

    def test_salt_decorrelates_switches(self):
        a = EcmpSelector(salt=1)
        b = EcmpSelector(salt=2)
        picks_a = [a.choose(_packet(1, f), (0, 1, 2, 3), 0.0) for f in range(64)]
        picks_b = [b.choose(_packet(1, f), (0, 1, 2, 3), 0.0) for f in range(64)]
        assert picks_a != picks_b  # same flows, independent hashing

    def test_deterministic_across_instances(self):
        picks = [
            EcmpSelector(salt=9).choose(_packet(3, f), (0, 1), 0.0)
            for f in range(32)
        ]
        again = [
            EcmpSelector(salt=9).choose(_packet(3, f), (0, 1), 0.0)
            for f in range(32)
        ]
        assert picks == again

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigError, match="empty candidate"):
            EcmpSelector().choose(_packet(1, 1), (), 0.0)


class TestFlowlet:
    def test_sticky_within_flowlet(self):
        selector = FlowletSelector(gap_s=1e-6, salt=3)
        picks = {
            selector.choose(_packet(1, 1, seq), (0, 1, 2, 3), seq * 1e-8)
            for seq in range(20)
        }
        assert len(picks) == 1
        assert selector.flowlets_started == 1

    def test_idle_gap_starts_a_new_flowlet(self):
        selector = FlowletSelector(gap_s=1e-6, salt=3)
        selector.choose(_packet(1, 1, 0), (0, 1, 2, 3), 0.0)
        selector.choose(_packet(1, 1, 1), (0, 1, 2, 3), 5e-6)  # > gap
        assert selector.flowlets_started == 2

    def test_no_intra_flowlet_reordering(self):
        """Within one flowlet every packet takes the same port, so a
        FIFO path cannot reorder them; the history proves it."""
        selector = FlowletSelector(gap_s=1e-6, salt=11)
        now = 0.0
        for seq in range(60):
            # Bursts of 10 packets, then an idle gap forcing a re-hash.
            if seq % 10 == 0 and seq:
                now += 5e-6
            selector.choose(_packet(2, 7, seq), (0, 1, 2, 3), now)
            now += 1e-8
        (history,) = selector.history.values()
        assert [seq for seq, _ in history] == sorted(
            seq for seq, _ in history
        )
        # Port only ever changes across a burst boundary.
        for (seq_a, port_a), (seq_b, port_b) in zip(history, history[1:]):
            if seq_b % 10 != 0:
                assert port_a == port_b, (seq_a, seq_b)

    def test_gap_must_be_positive(self):
        with pytest.raises(ConfigError, match="gap must be positive"):
            FlowletSelector(gap_s=0.0)


class TestFactory:
    def test_make_selector_modes(self):
        assert isinstance(make_selector("ecmp", "leaf0", 1e-6), EcmpSelector)
        assert isinstance(
            make_selector("flowlet", "leaf0", 1e-6), FlowletSelector
        )
        with pytest.raises(ConfigError, match="unknown routing"):
            make_selector("spray", "leaf0", 1e-6)

    def test_per_switch_salts_differ(self):
        assert (
            make_selector("ecmp", "leaf0", 1e-6).salt
            != make_selector("ecmp", "leaf1", 1e-6).salt
        )
