"""Tests for the DB filter-aggregate-reshuffle app (repro.apps.dbshuffle)."""

from __future__ import annotations

import pytest

from repro.adcp.switch import ADCPSwitch
from repro.apps import DBShuffleApp
from repro.apps.base import OP_RESULT
from repro.errors import ConfigError
from repro.rmt.switch import RMTSwitch


def _app(**kwargs) -> DBShuffleApp:
    defaults = dict(
        mapper_ports=[0, 1],
        reducer_ports=[4, 5],
        groups=16,
        filter_modulus=2,
        elements_per_packet=1,
    )
    defaults.update(kwargs)
    return DBShuffleApp(**defaults)  # type: ignore[arg-type]


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            _app(mapper_ports=[])
        with pytest.raises(ConfigError):
            _app(groups=0)
        with pytest.raises(ConfigError):
            _app(filter_modulus=0)

    def test_declares_central_state(self):
        assert _app().uses_central_state()


class TestEndToEnd:
    def test_adcp_group_totals_exact(self, small_adcp_config):
        app = _app(elements_per_packet=16)
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(
            app.workload(small_adcp_config.port_speed_bps, elements_per_mapper=160)
        )
        got = app.collect_results(result.delivered)
        assert got == app.expected_result(160)

    def test_rmt_group_totals_exact(self, small_rmt_config):
        app = _app(elements_per_packet=1)
        switch = RMTSwitch(small_rmt_config, app)
        result = switch.run(
            app.workload(small_rmt_config.port_speed_bps, elements_per_mapper=80)
        )
        assert app.collect_results(result.delivered) == app.expected_result(80)

    def test_filter_removes_odd_values(self, small_adcp_config):
        """value_fn producing odd values for odd keys -> those elements are
        filtered at ingress and never aggregated."""
        app = _app(elements_per_packet=16)
        switch = ADCPSwitch(small_adcp_config, app)
        value_fn = lambda key, mapper: key  # odd keys give odd values
        result = switch.run(
            app.workload(
                small_adcp_config.port_speed_bps, 160, value_fn=value_fn
            )
        )
        got = app.collect_results(result.delivered)
        assert got == app.expected_result(160, value_fn)
        assert all(key % 2 == 0 for key in got)
        assert app.filtered_elements > 0

    def test_results_reshuffled_by_group_hash(self, small_adcp_config):
        """Each group's total lands on the reducer owning the group — the
        're-shuffle' of filter-aggregate-reshuffle."""
        app = _app(elements_per_packet=16)
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(
            app.workload(small_adcp_config.port_speed_bps, 160)
        )
        for packet in result.delivered:
            if packet.header("coflow")["opcode"] != OP_RESULT:
                continue
            for element in packet.payload:
                assert packet.meta.egress_port == app.reducer_of(element.key)

    def test_each_group_emitted_once(self, small_adcp_config):
        app = _app(elements_per_packet=16)
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(app.workload(small_adcp_config.port_speed_bps, 160))
        seen: list[int] = []
        for packet in result.delivered:
            if packet.header("coflow")["opcode"] == OP_RESULT:
                seen.extend(packet.payload.keys())
        assert len(seen) == len(set(seen))


class TestFlushProtocol:
    def test_flush_keys_cover_all_partitions(self, small_adcp_config):
        app = _app()
        ADCPSwitch(small_adcp_config, app)  # binds placement
        keys = app.flush_keys()
        assert len(keys) == small_adcp_config.central_pipelines
        partitions = {app.partition_of_key(k) for k in keys}
        assert partitions == set(range(small_adcp_config.central_pipelines))

    def test_flush_keys_before_binding_rejected(self):
        with pytest.raises(ConfigError):
            _app().flush_keys()

    def test_no_results_before_all_mappers_flush(self, small_adcp_config):
        """A partition emits only after hearing a flush from *every*
        mapper — blocking-operator semantics."""
        app = _app(elements_per_packet=16)
        switch = ADCPSwitch(small_adcp_config, app)
        # Truncate the workload: drop the second mapper's flush markers.
        events = list(app.workload(small_adcp_config.port_speed_bps, 64))
        kept = [
            (t, p) for t, p in events
            if not (
                p.header("coflow")["opcode"] == 1
                and p.header("coflow")["worker_id"] == 1
            )
        ]
        result = switch.run(kept)
        results = [
            p for p in result.delivered
            if p.header("coflow")["opcode"] == OP_RESULT
        ]
        assert results == []
