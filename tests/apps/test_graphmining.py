"""Tests for the graph-mining dedup app (repro.apps.graphmining)."""

from __future__ import annotations

import pytest

from repro.adcp.switch import ADCPSwitch
from repro.apps import GraphMiningApp
from repro.errors import ConfigError
from repro.sim.rng import make_rng


def _app(**kwargs) -> GraphMiningApp:
    defaults = dict(
        partition_ports=[0, 1, 4, 5],
        num_vertices=1024,
        elements_per_packet=16,
    )
    defaults.update(kwargs)
    return GraphMiningApp(**defaults)  # type: ignore[arg-type]


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            _app(partition_ports=[0])
        with pytest.raises(ConfigError):
            _app(num_vertices=0)

    def test_declares_central_state(self):
        assert _app().uses_central_state()


class TestDeduplication:
    def test_each_vertex_forwarded_exactly_once(self, small_adcp_config, rng):
        app = _app()
        switch = ADCPSwitch(small_adcp_config, app)
        workload = app.superstep_workload(
            small_adcp_config.port_speed_bps,
            frontier_size=200,
            duplication=2.0,
            rng=rng,
        )
        result = switch.run(workload)
        all_forwarded: list[int] = []
        for packet in result.delivered:
            all_forwarded.extend(packet.payload.keys())
        assert len(all_forwarded) == len(set(all_forwarded))
        assert app.duplicates_absorbed > 0
        assert app.uniques_forwarded == len(set(all_forwarded))

    def test_forwarded_set_equals_frontier(self, small_adcp_config, rng):
        app = _app()
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(
            app.superstep_workload(
                small_adcp_config.port_speed_bps, 100, 1.0, rng
            )
        )
        forwarded = app.collect_forwarded(result.delivered)
        assert len(forwarded) == 100

    def test_vertices_routed_to_owner(self, small_adcp_config, rng):
        app = _app()
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(
            app.superstep_workload(
                small_adcp_config.port_speed_bps, 100, 1.0, rng
            )
        )
        for packet in result.delivered:
            for element in packet.payload:
                assert packet.meta.egress_port == app.owner_of(element.key)

    def test_bandwidth_saved_grows_with_duplication(self, small_adcp_config):
        """The point of in-flight dedup: higher duplication -> larger
        absorbed fraction."""
        low_app = _app()
        low = ADCPSwitch(small_adcp_config, low_app).run(
            low_app.superstep_workload(
                small_adcp_config.port_speed_bps, 150, 0.5, make_rng(7)
            )
        )
        high_app = _app()
        high = ADCPSwitch(small_adcp_config, high_app).run(
            high_app.superstep_workload(
                small_adcp_config.port_speed_bps, 150, 4.0, make_rng(7)
            )
        )
        low_ratio = low_app.duplicates_absorbed / max(1, low_app.uniques_forwarded)
        high_ratio = high_app.duplicates_absorbed / max(1, high_app.uniques_forwarded)
        assert high_ratio > low_ratio

    def test_out_of_range_vertex_rejected(self, small_adcp_config):
        from repro.net.traffic import make_coflow_packet

        app = _app(num_vertices=10)
        switch = ADCPSwitch(small_adcp_config, app)
        packet = make_coflow_packet(app.coflow_id, 0, 0, [(999, 0)])
        packet.meta.ingress_port = 0
        with pytest.raises(ConfigError):
            switch.run([(0.0, packet)])

    def test_workload_validation(self, rng):
        app = _app()
        with pytest.raises(ConfigError):
            app.superstep_workload(1e9, 0, 1.0, rng)
        with pytest.raises(ConfigError):
            app.superstep_workload(1e9, 10, -0.5, rng)
