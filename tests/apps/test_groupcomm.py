"""Tests for the group-communication app (repro.apps.groupcomm)."""

from __future__ import annotations

import pytest

from repro.adcp.switch import ADCPSwitch
from repro.apps import GroupCommApp
from repro.errors import ConfigError
from repro.rmt.switch import RMTSwitch


def _app(**kwargs) -> GroupCommApp:
    defaults = dict(
        groups={1: [2, 4, 6], 2: [1, 5]},
        elements_per_packet=1,
    )
    defaults.update(kwargs)
    return GroupCommApp(**defaults)  # type: ignore[arg-type]


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            GroupCommApp({})
        with pytest.raises(ConfigError):
            GroupCommApp({1: []})
        with pytest.raises(ConfigError):
            GroupCommApp({1: [2, 2]})

    def test_declares_central_state(self):
        assert _app().uses_central_state()


class TestFanOut:
    def test_every_member_receives_every_transfer(self, small_adcp_config):
        app = _app()
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(
            app.workload(
                small_adcp_config.port_speed_bps,
                senders={0: 1},
                transfers_per_sender=5,
            )
        )
        counts = app.deliveries_per_port(result.delivered)
        assert counts == {2: 5, 4: 5, 6: 5}
        assert app.transfers_started == 5
        assert app.copies_created == 15

    def test_unknown_group_dropped(self, small_adcp_config):
        from repro.net.traffic import make_coflow_packet

        app = _app()
        switch = ADCPSwitch(small_adcp_config, app)
        packet = make_coflow_packet(app.coflow_id, 0, 0, [(99, 0)])
        packet.meta.ingress_port = 0
        result = switch.run([(0.0, packet)])
        assert result.delivered == []
        assert result.dropped[0].meta.drop_reason == "unknown_group"

    def test_multiple_senders_multiple_groups(self, small_adcp_config):
        app = _app()
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(
            app.workload(
                small_adcp_config.port_speed_bps,
                senders={0: 1, 3: 2},
                transfers_per_sender=2,
            )
        )
        counts = app.deliveries_per_port(result.delivered)
        assert counts == {2: 2, 4: 2, 6: 2, 1: 2, 5: 2}

    def test_rmt_pays_recirculation_for_group_fanout(self, small_rmt_config):
        """On RMT the membership state pins to a pipeline; copies to other
        pipelines loop around."""
        app = _app()
        switch = RMTSwitch(small_rmt_config, app)
        result = switch.run(
            app.workload(
                small_rmt_config.port_speed_bps,
                senders={0: 1},
                transfers_per_sender=4,
            )
        )
        counts = app.deliveries_per_port(result.delivered)
        assert counts == {2: 4, 4: 4, 6: 4}
        assert result.recirculated_packets > 0

    def test_adcp_needs_no_recirculation(self, small_adcp_config):
        app = _app()
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(
            app.workload(
                small_adcp_config.port_speed_bps,
                senders={0: 1},
                transfers_per_sender=4,
            )
        )
        assert result.recirculated_packets == 0

    def test_workload_validation(self):
        app = _app()
        with pytest.raises(ConfigError):
            app.workload(1e9, senders={0: 99}, transfers_per_sender=1)
        with pytest.raises(ConfigError):
            app.workload(1e9, senders={0: 1}, transfers_per_sender=0)
