"""Tests for the streaming sort-merge join (repro.apps.mergejoin)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adcp.config import ADCPConfig
from repro.adcp.switch import ADCPSwitch
from repro.apps.mergejoin import SENTINEL_BASE, SortMergeJoinApp
from repro.errors import ConfigError
from repro.sim.rng import make_rng
from repro.units import GBPS


def _switch_and_app(central_pipelines: int = 4):
    app = SortMergeJoinApp(left_port=0, right_port=1, output_port=7)
    config = ADCPConfig(
        num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
        central_pipelines=central_pipelines,
    )
    switch = ADCPSwitch(config, app, ordered_flows=app.ordered_flows())
    return switch, app, config


class TestConstruction:
    def test_distinct_ports_required(self):
        with pytest.raises(ConfigError):
            SortMergeJoinApp(0, 0, 7)

    def test_declares_central_state(self):
        assert SortMergeJoinApp(0, 1, 7).uses_central_state()

    def test_ordered_flows(self):
        assert SortMergeJoinApp(0, 1, 7).ordered_flows() == [0, 1]


class TestJoinCorrectness:
    def test_basic_inner_join(self):
        switch, app, config = _switch_and_app()
        left = [(1, 10), (2, 20), (5, 50)]
        right = [(2, 200), (3, 300), (5, 500)]
        result = switch.run(app.workload(config.port_speed_bps, left, right))
        assert app.collect_matches(result.delivered) == {
            (2, 20, 200), (5, 50, 500)
        }

    def test_duplicate_keys_cross_product(self):
        switch, app, config = _switch_and_app()
        left = [(4, 1), (4, 2)]
        right = [(4, 7), (4, 8), (4, 9)]
        result = switch.run(app.workload(config.port_speed_bps, left, right))
        matches = app.collect_matches(result.delivered)
        assert len(matches) == 6  # 2 x 3

    def test_empty_intersection(self):
        switch, app, config = _switch_and_app()
        result = switch.run(
            app.workload(config.port_speed_bps, [(1, 1)], [(2, 2)])
        )
        assert app.collect_matches(result.delivered) == set()

    def test_one_empty_relation(self):
        switch, app, config = _switch_and_app()
        result = switch.run(
            app.workload(config.port_speed_bps, [], [(2, 2)])
        )
        assert app.collect_matches(result.delivered) == set()

    def test_unsorted_relation_rejected(self):
        switch, app, config = _switch_and_app()
        with pytest.raises(ConfigError):
            app.workload(config.port_speed_bps, [(5, 1), (1, 2)], [])

    def test_oversized_keys_rejected(self):
        switch, app, config = _switch_and_app()
        with pytest.raises(ConfigError):
            app.workload(config.port_speed_bps, [(SENTINEL_BASE, 1)], [])

    def test_requires_ordered_switch(self):
        """Without ordered_flows, interleaved keys regress at central and
        the app detects the misconfiguration."""
        app = SortMergeJoinApp(left_port=0, right_port=1, output_port=7)
        config = ADCPConfig(
            num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
            central_pipelines=1,  # one partition: global order matters
        )
        switch = ADCPSwitch(config, app)  # no ordered_flows!
        left = [(1, 10), (9, 90)]
        right = [(5, 50), (6, 60)]
        with pytest.raises(ConfigError):
            switch.run(app.workload(config.port_speed_bps, left, right))


class TestStateBounds:
    def test_state_is_bounded_by_duplicates_not_relation_size(self):
        """The section 3.1 payoff: streaming state stays O(per-key
        duplicates) even as the relations grow."""
        switch, app, config = _switch_and_app()
        n = 200
        left = [(k, k) for k in range(n)]
        right = [(k, k + 1) for k in range(n)]
        result = switch.run(app.workload(config.port_speed_bps, left, right))
        assert len(app.collect_matches(result.delivered)) == n
        assert app.max_buffered_values <= 4  # independent of n


class TestProperties:
    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_join_matches_ground_truth_on_random_relations(self, seed):
        rng = make_rng(seed)
        left = sorted(
            (int(k), int(v))
            for k, v in zip(
                rng.integers(0, 40, size=30), rng.integers(0, 100, size=30)
            )
        )
        right = sorted(
            (int(k), int(v))
            for k, v in zip(
                rng.integers(0, 40, size=30), rng.integers(0, 100, size=30)
            )
        )
        switch, app, config = _switch_and_app()
        result = switch.run(app.workload(config.port_speed_bps, left, right))
        assert app.collect_matches(result.delivered) == app.expected_join(
            left, right
        )
