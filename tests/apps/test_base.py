"""Tests for shared app plumbing (repro.apps.base)."""

from __future__ import annotations

import pytest

from repro.apps.base import (
    OP_DATA,
    OP_FLUSH,
    coflow_arrivals,
    shuffled_destination,
)
from repro.coflow.model import Coflow
from repro.coflow.workload import aggregation_coflow
from repro.errors import ConfigError
from repro.units import GBPS


class TestCoflowArrivals:
    def test_all_elements_materialized(self):
        coflow = aggregation_coflow(1, [0, 1, 2], 100)
        arrivals = list(coflow_arrivals(coflow, 100 * GBPS, 16))
        elements = sum(p.element_count for _, p in arrivals)
        assert elements == 300  # 3 workers x 100

    def test_time_ordered(self):
        coflow = aggregation_coflow(1, [0, 1], 64)
        times = [t for t, _ in coflow_arrivals(coflow, 100 * GBPS, 4)]
        assert times == sorted(times)

    def test_keys_identical_across_workers(self):
        """Every worker contributes the same key set — the aggregation
        precondition."""
        coflow = aggregation_coflow(1, [0, 1], 32)
        per_port: dict[int, list[int]] = {0: [], 1: []}
        for _, packet in coflow_arrivals(coflow, 100 * GBPS, 8):
            per_port[packet.meta.ingress_port].extend(packet.payload.keys())
        assert sorted(per_port[0]) == sorted(per_port[1]) == list(range(32))

    def test_value_fn_applied(self):
        coflow = aggregation_coflow(1, [0, 1], 4)
        arrivals = list(
            coflow_arrivals(coflow, GBPS, 4, value_fn=lambda k: k * 10)
        )
        _, first = arrivals[0]
        assert first.payload.values() == [0, 10, 20, 30]

    def test_flush_markers_appended(self):
        coflow = aggregation_coflow(1, [0, 1], 8)
        arrivals = list(coflow_arrivals(coflow, GBPS, 8, flush=True))
        flushes = [
            p for _, p in arrivals
            if p.header("coflow")["opcode"] == OP_FLUSH
        ]
        assert len(flushes) == 2  # one per input flow

    def test_empty_coflow_rejected(self):
        with pytest.raises(ConfigError):
            list(coflow_arrivals(Coflow(1), GBPS, 1))

    def test_invalid_packing_rejected(self):
        coflow = aggregation_coflow(1, [0, 1], 8)
        with pytest.raises(ConfigError):
            list(coflow_arrivals(coflow, GBPS, 0))


class TestShuffledDestination:
    def test_deterministic(self):
        assert shuffled_destination(42, [4, 5, 6]) == shuffled_destination(
            42, [4, 5, 6]
        )

    def test_spread_over_reducers(self):
        ports = [4, 5, 6]
        destinations = {shuffled_destination(k, ports) for k in range(100)}
        assert destinations == set(ports)

    def test_empty_reducers_rejected(self):
        with pytest.raises(ConfigError):
            shuffled_destination(1, [])
