"""Tests for the key/value cache app (repro.apps.kvcache)."""

from __future__ import annotations

import pytest

from repro.adcp.switch import ADCPSwitch
from repro.apps import KVCacheApp
from repro.apps.base import OP_GET, OP_PUT, OP_REPLY
from repro.errors import ConfigError
from repro.net.traffic import DeterministicSource, make_coflow_packet
from repro.rmt.switch import RMTSwitch
from repro.sim.rng import make_rng


def _app(**kwargs) -> KVCacheApp:
    defaults = dict(
        server_port=7,
        client_ports=[0, 1, 2],
        hot_items={k: k * 100 for k in range(16)},
        elements_per_packet=1,
    )
    defaults.update(kwargs)
    return KVCacheApp(**defaults)  # type: ignore[arg-type]


def _get(app, key, worker=0, seq=0):
    packet = make_coflow_packet(
        app.coflow_id, worker, seq, [(key, 0)], opcode=OP_GET, worker_id=worker
    )
    packet.meta.ingress_port = app.client_ports[worker]
    return packet


def _put(app, key, value, worker=0, seq=0):
    packet = make_coflow_packet(
        app.coflow_id, worker, seq, [(key, value)], opcode=OP_PUT, worker_id=worker
    )
    packet.meta.ingress_port = app.client_ports[worker]
    return packet


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            _app(client_ports=[])
        with pytest.raises(ConfigError):
            _app(server_port=0)  # collides with client port
        with pytest.raises(ConfigError):
            _app(capacity_per_partition=0)

    def test_capacity_limit_on_install(self):
        with pytest.raises(ConfigError):
            app = KVCacheApp(
                7, [0], {k: 0 for k in range(100)}, capacity_per_partition=4
            )
            app.bind_placement(2)


class TestCacheBehaviour:
    def test_hot_get_served_from_switch(self, small_adcp_config):
        """Pre-installed hot items answer GETs from switch state."""
        app = _app()
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run([(0.0, _get(app, key=3))])
        replies = [
            p for p in result.delivered
            if p.header("coflow")["opcode"] == OP_REPLY
        ]
        assert len(replies) == 1
        assert replies[0].payload.values() == [300]  # hot item 3 -> 300
        assert replies[0].meta.egress_port == 0
        assert app.hits == 1 and app.misses == 0

    def test_put_then_get_returns_value(self, small_adcp_config):
        app = _app()
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(
            [(0.0, _put(app, 3, 999)), (1e-6, _get(app, 3, worker=1, seq=1))]
        )
        replies = [
            p for p in result.delivered
            if p.header("coflow")["opcode"] == OP_REPLY
        ]
        assert len(replies) == 1
        assert replies[0].payload.keys() == [3]
        assert replies[0].payload.values() == [999]
        assert replies[0].meta.egress_port == 1  # back to the requester
        assert app.hits == 1

    def test_put_writes_through_to_server(self, small_adcp_config):
        app = _app()
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run([(0.0, _put(app, 3, 999))])
        to_server = [p for p in result.delivered if p.meta.egress_port == 7]
        assert len(to_server) == 1
        assert to_server[0].header("coflow")["opcode"] == OP_PUT

    def test_miss_forwarded_to_server(self, small_adcp_config):
        app = _app()
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run([(0.0, _get(app, key=9999))])
        to_server = [p for p in result.delivered if p.meta.egress_port == 7]
        assert len(to_server) == 1
        assert to_server[0].payload.keys() == [9999]
        assert app.misses == 1
        assert app.hit_rate == 0.0

    def test_mixed_batch_splits_hits_and_misses(self, small_adcp_config):
        """A 4-key GET with 2 cached keys yields one reply and one trimmed
        miss request — element-level processing, the array story.

        Batches must be partition-local, so the cached keys are chosen to
        co-place with each other (the app owns placement, so the workload
        can always arrange this)."""
        app = _app(elements_per_packet=4)
        switch = ADCPSwitch(small_adcp_config, app)
        # Find two hot keys on the same partition, plus two cold keys that
        # place there too.
        assert app.placement_policy is not None
        target = app.placement_policy.place(3)
        hot = [k for k in app.hot_items if app.placement_policy.place(k) == target][:2]
        cold = [
            k for k in range(1000, 2000)
            if app.placement_policy.place(k) == target
        ][:2]
        assert len(hot) == 2 and len(cold) == 2
        packet = make_coflow_packet(
            app.coflow_id, 0, 0,
            [(hot[0], 0), (hot[1], 0), (cold[0], 0), (cold[1], 0)],
            opcode=OP_GET, worker_id=0,
        )
        packet.meta.ingress_port = 0
        result = switch.run([(0.0, packet)])
        replies = [
            p for p in result.delivered
            if p.header("coflow")["opcode"] == OP_REPLY
        ]
        misses = [
            p for p in result.delivered
            if p.header("coflow")["opcode"] == OP_GET and p.meta.egress_port == 7
        ]
        assert len(replies) == 1
        assert sorted(replies[0].payload.keys()) == sorted(hot)
        assert replies[0].payload.values() == [k * 100 for k in replies[0].payload.keys()]
        assert len(misses) == 1
        assert sorted(misses[0].payload.keys()) == sorted(cold)
        assert app.hits == 2
        assert app.misses == 2

    def test_cross_partition_batch_rejected(self, small_adcp_config):
        """A batch mixing cached keys from different partitions is a
        programming error the model surfaces."""
        app = _app(elements_per_packet=4)
        switch = ADCPSwitch(small_adcp_config, app)
        assert app.placement_policy is not None
        by_partition: dict[int, int] = {}
        for key in app.hot_items:
            by_partition.setdefault(app.placement_policy.place(key), key)
        if len(by_partition) < 2:
            pytest.skip("hot items landed on one partition")
        k1, k2 = list(by_partition.values())[:2]
        packet = make_coflow_packet(
            app.coflow_id, 0, 0, [(k1, 0), (k2, 0)], opcode=OP_GET, worker_id=0
        )
        packet.meta.ingress_port = 0
        with pytest.raises(ConfigError):
            switch.run([(0.0, packet)])


class TestWorkloadGenerator:
    def test_zipf_stream_shape(self):
        app = _app()
        packets = app.request_stream(100, make_rng(1), key_space=1000)
        assert len(packets) == 100
        assert all(p.header("coflow")["opcode"] == OP_GET for p in packets)
        # Zipf skew: the most popular key appears far more than median.
        from collections import Counter

        counts = Counter(k for p in packets for k in p.payload.keys())
        assert counts.most_common(1)[0][1] >= 10

    def test_requests_round_robin_clients(self):
        app = _app()
        packets = app.request_stream(6, make_rng(1))
        ports = [p.meta.ingress_port for p in packets]
        assert ports == [0, 1, 2, 0, 1, 2]

    def test_validation(self):
        with pytest.raises(ConfigError):
            _app().request_stream(0, make_rng())


class TestOnRmt:
    def test_cache_works_scalar_on_rmt(self, small_rmt_config):
        """The cache is a stateful hash table: legal on RMT only at one
        key per packet."""
        app = _app()
        switch = RMTSwitch(small_rmt_config, app)
        result = switch.run(
            [(0.0, _put(app, 2, 42)), (1e-6, _get(app, 2, worker=1, seq=1))]
        )
        replies = [
            p for p in result.delivered
            if p.header("coflow")["opcode"] == OP_REPLY
        ]
        assert len(replies) == 1
        assert replies[0].payload.values() == [42]

    def test_wide_cache_rejected_on_rmt(self, small_rmt_config):
        from repro.errors import CompileError

        with pytest.raises(CompileError):
            RMTSwitch(small_rmt_config, _app(elements_per_packet=4))
