"""Tests for the parameter-server app (repro.apps.paramserver)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp
from repro.apps.base import OP_RESULT
from repro.errors import ConfigError
from repro.rmt.switch import RMTSwitch


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ParameterServerApp([0], 16)  # one worker
        with pytest.raises(ConfigError):
            ParameterServerApp([0, 0], 16)  # duplicate ports
        with pytest.raises(ConfigError):
            ParameterServerApp([0, 1], 0)  # empty vector

    def test_declares_central_state(self):
        assert ParameterServerApp([0, 1], 16).uses_central_state()


class TestPlacement:
    def test_expected_counts_cover_vector(self):
        app = ParameterServerApp([0, 1], 100, elements_per_packet=16)
        app.bind_placement(4)
        assert sum(app._expected.values()) == 100

    def test_chunk_granularity(self):
        """All keys of one chunk map to the chunk-start's partition."""
        app = ParameterServerApp([0, 1], 64, elements_per_packet=16)
        app.bind_placement(4)
        for chunk_start in range(0, 64, 16):
            partition = app.partition_of_key(chunk_start)
            assert app._expected[partition] >= 16

    def test_placement_key_is_first_element(self):
        app = ParameterServerApp([0, 1], 16)
        from repro.net.traffic import make_coflow_packet

        packet = make_coflow_packet(1, 0, 0, [(42, 1), (43, 1)])
        assert app.placement_key(packet) == 42

    def test_empty_packet_rejected(self):
        app = ParameterServerApp([0, 1], 16)
        from repro.net.traffic import make_coflow_packet
        from repro.net.packet import Packet
        from repro.net.headers import standard_stack, coflow_header

        packet = Packet(standard_stack() + [coflow_header(1, 0)])
        with pytest.raises(ConfigError):
            app.placement_key(packet)


class TestEndToEndCorrectness:
    def test_adcp_aggregation_exact(self, small_adcp_config):
        app = ParameterServerApp([0, 1, 2, 3], 128, elements_per_packet=16)
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(app.workload(small_adcp_config.port_speed_bps))
        assert app.collect_results(result.delivered) == app.expected_result()

    def test_rmt_aggregation_exact(self, small_rmt_config):
        app = ParameterServerApp([0, 1, 2, 3], 128, elements_per_packet=1)
        switch = RMTSwitch(small_rmt_config, app)
        result = switch.run(app.workload(small_rmt_config.port_speed_bps))
        assert app.collect_results(result.delivered) == app.expected_result()

    def test_custom_value_function(self, small_adcp_config):
        app = ParameterServerApp([0, 1], 32, elements_per_packet=16)
        switch = ADCPSwitch(small_adcp_config, app)
        value_fn = lambda key: key * key + 1
        result = switch.run(
            app.workload(small_adcp_config.port_speed_bps, value_fn=value_fn)
        )
        assert app.collect_results(result.delivered) == app.expected_result(value_fn)

    def test_results_multicast_to_every_worker(self, small_adcp_config):
        app = ParameterServerApp([0, 1, 4, 5], 32, elements_per_packet=16)
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(app.workload(small_adcp_config.port_speed_bps))
        results = [
            p for p in result.delivered
            if p.header("coflow")["opcode"] == OP_RESULT
        ]
        per_port: dict[int, int] = {}
        for packet in results:
            per_port[packet.meta.egress_port] = per_port.get(packet.meta.egress_port, 0) + 1
        assert set(per_port) == {0, 1, 4, 5}
        assert len(set(per_port.values())) == 1  # same count everywhere

    def test_every_result_element_emitted_exactly_once(self, small_adcp_config):
        app = ParameterServerApp([0, 1], 64, elements_per_packet=16)
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(app.workload(small_adcp_config.port_speed_bps))
        keys_per_port: dict[int, list[int]] = {0: [], 1: []}
        for packet in result.delivered:
            if packet.header("coflow")["opcode"] != OP_RESULT:
                continue
            keys_per_port[packet.meta.egress_port].extend(
                packet.payload.keys()
            )
        for port, keys in keys_per_port.items():
            assert sorted(keys) == list(range(64)), f"port {port}"

    def test_conflicting_duplicates_detected(self):
        from repro.net.traffic import make_coflow_packet

        a = make_coflow_packet(1, 0xFFFF, 0, [(1, 10)], opcode=OP_RESULT)
        b = make_coflow_packet(1, 0xFFFF, 1, [(1, 20)], opcode=OP_RESULT)
        with pytest.raises(ConfigError):
            ParameterServerApp.collect_results([a, b])

    @settings(deadline=None, max_examples=10)
    @given(
        workers=st.integers(min_value=2, max_value=6),
        vector=st.integers(min_value=1, max_value=200),
        epp=st.sampled_from([1, 4, 16]),
    )
    def test_aggregation_correct_for_any_shape(
        self, workers, vector, epp
    ):
        """Property: aggregation is exact for any worker count, vector
        length, and packing factor on the ADCP."""
        from repro.adcp.config import ADCPConfig
        from repro.units import GBPS

        config = ADCPConfig(
            num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
            central_pipelines=4,
        )
        app = ParameterServerApp(
            list(range(workers)), vector, elements_per_packet=epp
        )
        switch = ADCPSwitch(config, app)
        result = switch.run(app.workload(config.port_speed_bps))
        assert app.collect_results(result.delivered) == app.expected_result()
