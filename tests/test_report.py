"""Tests for the CLI artifact reports (repro.report / python -m repro)."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.report import ARTIFACTS, run, run_structured


class TestRun:
    def test_all_artifacts_produce_lines(self):
        lines = run(None)
        assert len(lines) > len(ARTIFACTS) * 2
        text = "\n".join(lines)
        assert "Table 2" in text
        assert "Table 3" in text
        assert "key rate" in text

    @pytest.mark.parametrize("name", sorted(ARTIFACTS))
    def test_each_artifact_individually(self, name):
        lines = run([name])
        assert lines and lines[0]

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ConfigError):
            run(["bogus"])

    def test_table2_content(self):
        text = "\n".join(run(["table2"]))
        assert "0.952 GHz" in text
        assert "1.250 GHz" in text

    def test_claims_content(self):
        text = "\n".join(run(["claims"]))
        assert "952 Mpps" in text
        assert "2.38 Bpps" in text

    def test_structured_keys_match_selection(self):
        sections = run_structured(["table3", "claims"])
        assert list(sections) == ["table3", "claims"]
        assert all(lines for lines in sections.values())

    def test_structured_rejects_before_generating(self):
        with pytest.raises(ConfigError, match="unknown artifact"):
            run_structured(["table2", "bogus"])


class TestMainModule:
    def test_cli_happy_path(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "table3"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "Table 3" in proc.stdout

    def test_cli_help(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "usage" in proc.stdout

    def test_cli_error_path(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "nonsense"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "unknown artifact" in proc.stderr
        assert "Table" not in proc.stdout  # no partial default-all report

    def test_cli_json_mode(self):
        import json

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--json", "table2", "claims"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert set(payload) == {"table2", "claims"}
        assert any("0.952 GHz" in line for line in payload["table2"])

    def test_cli_json_mode_unknown_artifact(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--json", "bogus"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "unknown artifact" in proc.stderr
        assert proc.stdout.strip() == ""

    def test_cli_trace_requires_workload(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "trace"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "workload" in proc.stderr

    def test_cli_trace_unknown_workload_lists_choices(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "trace", "bogus"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "unknown trace workload" in proc.stderr
        # The error is actionable: it names every valid workload.
        assert "choose from" in proc.stderr
        assert "quickstart" in proc.stderr
        assert "mltrain" in proc.stderr


class TestProfileCLI:
    """The ``profile`` subcommand, driven in-process for speed."""

    @staticmethod
    def _main(argv):
        from repro.__main__ import main

        return main(argv)

    def test_profile_text_output(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert self._main(["profile", "mergejoin"]) == 0
        out = capsys.readouterr().out
        assert "latency attribution" in out
        assert "bottleneck report" in out
        assert "queue-delay share" in out

    def test_profile_json_output(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        assert self._main(["--json", "profile", "mergejoin"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "mergejoin"
        (section,) = payload["sections"]
        assert section["label"] == "adcp-mergejoin"
        assert set(section["attribution"]["buckets"])
        assert section["bottlenecks"]["critical"]
        assert "gap" not in payload  # single-section workload

    def test_profile_chrome_trace_creates_parent_dirs(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        monkeypatch.chdir(tmp_path)
        target = tmp_path / "deep" / "nested" / "profile.json"
        assert (
            self._main(["profile", "mergejoin", "--chrome", str(target)])
            == 0
        )
        events = json.loads(target.read_text())["traceEvents"]
        assert events
        # Attribution lanes ride alongside the raw telemetry events.
        assert any(
            str(e.get("pid", "")).endswith("-attribution") for e in events
        )

    def test_profile_unknown_workload_lists_choices(self, capsys):
        assert self._main(["profile", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown profile workload" in err
        assert "choose from" in err
        assert "mltrain" in err

    def test_trace_out_creates_parent_dirs(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "missing" / "dir" / "trace.json"
        assert (
            self._main(["trace", "mergejoin", "--out", str(target)]) == 0
        )
        assert target.exists()
