"""Tests for the CLI artifact reports (repro.report / python -m repro)."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.report import ARTIFACTS, run


class TestRun:
    def test_all_artifacts_produce_lines(self):
        lines = run(None)
        assert len(lines) > len(ARTIFACTS) * 2
        text = "\n".join(lines)
        assert "Table 2" in text
        assert "Table 3" in text
        assert "key rate" in text

    @pytest.mark.parametrize("name", sorted(ARTIFACTS))
    def test_each_artifact_individually(self, name):
        lines = run([name])
        assert lines and lines[0]

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ConfigError):
            run(["bogus"])

    def test_table2_content(self):
        text = "\n".join(run(["table2"]))
        assert "0.952 GHz" in text
        assert "1.250 GHz" in text

    def test_claims_content(self):
        text = "\n".join(run(["claims"]))
        assert "952 Mpps" in text
        assert "2.38 Bpps" in text


class TestMainModule:
    def test_cli_happy_path(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "table3"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "Table 3" in proc.stdout

    def test_cli_help(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "usage" in proc.stdout

    def test_cli_error_path(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "nonsense"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "unknown artifact" in proc.stderr
