"""Tests for the CLI artifact reports (repro.report / python -m repro)."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.report import ARTIFACTS, run, run_structured


class TestRun:
    def test_all_artifacts_produce_lines(self):
        lines = run(None)
        assert len(lines) > len(ARTIFACTS) * 2
        text = "\n".join(lines)
        assert "Table 2" in text
        assert "Table 3" in text
        assert "key rate" in text

    @pytest.mark.parametrize("name", sorted(ARTIFACTS))
    def test_each_artifact_individually(self, name):
        lines = run([name])
        assert lines and lines[0]

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ConfigError):
            run(["bogus"])

    def test_table2_content(self):
        text = "\n".join(run(["table2"]))
        assert "0.952 GHz" in text
        assert "1.250 GHz" in text

    def test_claims_content(self):
        text = "\n".join(run(["claims"]))
        assert "952 Mpps" in text
        assert "2.38 Bpps" in text

    def test_structured_keys_match_selection(self):
        sections = run_structured(["table3", "claims"])
        assert list(sections) == ["table3", "claims"]
        assert all(lines for lines in sections.values())

    def test_structured_rejects_before_generating(self):
        with pytest.raises(ConfigError, match="unknown artifact"):
            run_structured(["table2", "bogus"])


class TestMainModule:
    def test_cli_happy_path(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "table3"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "Table 3" in proc.stdout

    def test_cli_help(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "usage" in proc.stdout

    def test_cli_error_path(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "nonsense"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "unknown artifact" in proc.stderr
        assert "Table" not in proc.stdout  # no partial default-all report

    def test_cli_json_mode(self):
        import json

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--json", "table2", "claims"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert set(payload) == {"table2", "claims"}
        assert any("0.952 GHz" in line for line in payload["table2"])

    def test_cli_json_mode_unknown_artifact(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--json", "bogus"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "unknown artifact" in proc.stderr
        assert proc.stdout.strip() == ""

    def test_cli_trace_requires_workload(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "trace"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "workload" in proc.stderr

    def test_cli_trace_unknown_workload(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "trace", "bogus"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "unknown trace workload" in proc.stderr
