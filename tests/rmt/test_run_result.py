"""Tests for SwitchRunResult accounting helpers (repro.rmt.switch)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.net.traffic import make_coflow_packet
from repro.rmt.switch import SwitchRunResult


def _delivered(port: int, elements: int = 2, departure: float = 1.0):
    packet = make_coflow_packet(1, 0, 0, [(i, i) for i in range(elements)])
    packet.meta.egress_port = port
    packet.meta.departure_time = departure
    return packet


class TestSwitchRunResult:
    def test_counting_helpers(self):
        result = SwitchRunResult()
        result.delivered.extend([_delivered(1), _delivered(2, elements=4)])
        assert result.delivered_count == 2
        assert result.delivered_elements == 6
        assert result.delivered_goodput_bytes == 6 * 8
        assert result.delivered_wire_bytes == sum(
            p.wire_bytes for p in result.delivered
        )

    def test_delivered_to_filters_by_port(self):
        result = SwitchRunResult()
        result.delivered.extend([_delivered(1), _delivered(2), _delivered(1)])
        assert len(result.delivered_to(1)) == 2
        assert len(result.delivered_to(9)) == 0

    def test_last_departure(self):
        result = SwitchRunResult()
        result.delivered.extend(
            [_delivered(1, departure=0.5), _delivered(1, departure=2.5)]
        )
        assert result.last_departure() == 2.5

    def test_last_departure_empty_raises(self):
        with pytest.raises(ConfigError):
            SwitchRunResult().last_departure()

    def test_defaults(self):
        result = SwitchRunResult()
        assert result.delivered_count == 0
        assert result.consumed == 0
        assert result.recirculated_packets == 0
        assert result.unreachable_emissions == 0
        assert result.counters == {}
