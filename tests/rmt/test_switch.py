"""Behavioral tests for the RMT switch (repro.rmt.switch).

These encode the paper's section 2 limitations as executable assertions:
egress pinning restricts reachability, recirculation taxes bandwidth, and
stateful processing forces scalar packets.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.apps import ParameterServerApp
from repro.arch.decision import Decision
from repro.arch.app import SwitchApp
from repro.errors import CompileError
from repro.net.traffic import DeterministicSource, make_coflow_packet
from repro.rmt.config import RMTConfig, StateMode
from repro.rmt.switch import RMTSwitch
from repro.units import BITS_PER_BYTE, GBPS


def _forwarding_packets(n, ingress_port, egress_port, elements=1):
    packets = []
    for i in range(n):
        packet = make_coflow_packet(1, 0, i, [(j, j) for j in range(elements)])
        packet.meta.egress_port = egress_port
        packets.append(packet)
    return packets


def _run_forwarding(config, n=50, ingress=0, egress=7):
    switch = RMTSwitch(config)
    source = DeterministicSource(
        ingress, config.port_speed_bps, _forwarding_packets(n, ingress, egress)
    )
    return switch, switch.run(source.packets())


class TestPureForwarding:
    def test_all_delivered_cross_pipeline(self, small_rmt_config):
        switch, result = _run_forwarding(small_rmt_config)
        assert result.delivered_count == 50
        assert not result.dropped
        assert all(p.meta.egress_port == 7 for p in result.delivered)

    def test_line_rate_sustained(self, small_rmt_config):
        """Delivery duration tracks the source duration: the switch never
        becomes the bottleneck at its rated packet rate."""
        switch, result = _run_forwarding(small_rmt_config, n=200)
        packets = _forwarding_packets(1, 0, 7)
        wire = packets[0].wire_bytes * BITS_PER_BYTE / small_rmt_config.port_speed_bps
        source_duration = 200 * wire
        assert result.last_departure() <= source_duration * 1.05 + 1e-6

    def test_latency_includes_both_pipelines_and_tm(self, small_rmt_config):
        switch, result = _run_forwarding(small_rmt_config, n=1)
        packet = result.delivered[0]
        transit = packet.meta.departure_time - packet.meta.arrival_time
        minimum = (
            2 * small_rmt_config.pipeline_latency_s
            + small_rmt_config.tm_latency_cycles / small_rmt_config.frequency_hz
        )
        assert transit >= minimum

    def test_no_route_packet_dropped(self, small_rmt_config):
        switch = RMTSwitch(small_rmt_config)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        packet.meta.ingress_port = 0  # no egress port set
        result = switch.run([(0.0, packet)])
        assert result.delivered_count == 0
        assert result.dropped[0].meta.drop_reason == "no_route"

    def test_multicast_delivers_to_all_ports(self, small_rmt_config):
        switch = RMTSwitch(small_rmt_config)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        packet.meta.ingress_port = 0
        packet.meta.egress_ports = (1, 4, 6)
        result = switch.run([(0.0, packet)])
        assert sorted(p.meta.egress_port for p in result.delivered) == [1, 4, 6]

    def test_counters_snapshot_populated(self, small_rmt_config):
        switch, result = _run_forwarding(small_rmt_config, n=5)
        assert result.counters["rmt.delivered"] == 5
        assert result.counters["rmt.tm.admitted"] == 5


class TestScalarEnforcement:
    def test_stateful_app_with_wide_packets_rejected(self, small_rmt_config):
        """Section 2 issue 2 as an executable rule: stateful + multi-
        element packets cannot compile to RMT."""
        app = ParameterServerApp([0, 1], 64, elements_per_packet=4)
        with pytest.raises(CompileError) as excinfo:
            RMTSwitch(small_rmt_config, app)
        assert "scalar" in str(excinfo.value)

    def test_stateless_app_with_wide_packets_allowed(self, small_rmt_config):
        class StatelessApp(SwitchApp):
            def __init__(self):
                super().__init__("stateless", elements_per_packet=8)

        RMTSwitch(small_rmt_config, StatelessApp())  # must not raise


class TestEgressPinning:
    def test_state_concentrates_on_one_pipeline(self, small_rmt_config):
        """All of a coflow's packets funnel through the state pipeline's
        egress, whatever their ingress port."""
        app = ParameterServerApp([0, 1, 4, 5], 32, elements_per_packet=1)
        switch = RMTSwitch(small_rmt_config, app)
        result = switch.run(app.workload(small_rmt_config.port_speed_bps))
        assert app.collect_results(result.delivered) == app.expected_result()
        # Exactly one egress pipeline hosts aggregation registers.
        with_state = [e for e in switch.egress if "agg_acc" in e.registers]
        assert len(with_state) == len(
            {app.partition_of_key((k // 1) * 1) for k in range(32)}
        ) or len(with_state) >= 1

    def test_results_to_foreign_ports_recirculate(self, small_rmt_config):
        """Results multicast to workers on other pipelines must loop
        around — Figure 2's cost."""
        app = ParameterServerApp([0, 1, 4, 5], 32, elements_per_packet=1)
        switch = RMTSwitch(small_rmt_config, app)
        result = switch.run(app.workload(small_rmt_config.port_speed_bps))
        assert result.recirculated_packets > 0
        assert result.recirculated_wire_bytes > 0

    def test_recirculation_disabled_loses_foreign_results(self, small_rmt_config):
        """With the escape hatch closed, only ports attached to the state
        pipeline are reachable — the reachability restriction itself."""
        config = dataclasses.replace(small_rmt_config, allow_recirculation=False)
        app = ParameterServerApp([0, 1, 4, 5], 32, elements_per_packet=1)
        switch = RMTSwitch(config, app)
        result = switch.run(app.workload(config.port_speed_bps))
        assert result.unreachable_emissions > 0
        got = app.collect_results(result.delivered)
        expected = app.expected_result()
        # Results multicast to the worker group need the TM, which an
        # egress-born emission can only reach by looping around; with the
        # loop closed, the all-reduce cannot complete.
        assert got != expected
        assert set(got) <= set(expected)


class TestRecirculateMode:
    def _config(self, small_rmt_config):
        return dataclasses.replace(
            small_rmt_config, state_mode=StateMode.RECIRCULATE
        )

    def test_correct_and_taxed(self, small_rmt_config):
        config = self._config(small_rmt_config)
        app = ParameterServerApp([0, 1, 4, 5], 32, elements_per_packet=1)
        switch = RMTSwitch(config, app)
        result = switch.run(app.workload(config.port_speed_bps))
        assert app.collect_results(result.delivered) == app.expected_result()
        # Packets landing on the wrong pipeline pay a loop.
        assert result.recirculated_packets > 0

    def test_state_lives_in_ingress_pipelines(self, small_rmt_config):
        config = self._config(small_rmt_config)
        app = ParameterServerApp([0, 1, 4, 5], 32, elements_per_packet=1)
        switch = RMTSwitch(config, app)
        switch.run(app.workload(config.port_speed_bps))
        assert any("agg_acc" in p.registers for p in switch.ingress)
        assert not any("agg_acc" in p.registers for p in switch.egress)

    def test_slower_than_adcp_equivalent(self, small_rmt_config, small_adcp_config):
        """Headline comparison: same coflow, RMT-with-recirculation versus
        ADCP's global area, both at the same port speed."""
        from repro.adcp.switch import ADCPSwitch

        config = self._config(small_rmt_config)
        rmt_app = ParameterServerApp([0, 1, 4, 5], 128, elements_per_packet=1)
        rmt = RMTSwitch(config, rmt_app)
        rmt_result = rmt.run(rmt_app.workload(config.port_speed_bps))

        adcp_app = ParameterServerApp([0, 1, 4, 5], 128, elements_per_packet=16)
        adcp = ADCPSwitch(small_adcp_config, adcp_app)
        adcp_result = adcp.run(adcp_app.workload(small_adcp_config.port_speed_bps))

        assert rmt_result.duration_s > 2 * adcp_result.duration_s
