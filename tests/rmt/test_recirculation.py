"""Focused tests for the recirculation path accounting."""

from __future__ import annotations

import dataclasses

import pytest

from repro.apps import ParameterServerApp
from repro.rmt.config import StateMode
from repro.rmt.switch import RMTSwitch


class TestRecirculationAccounting:
    def _run(self, config):
        app = ParameterServerApp([0, 1, 4, 5], 64, elements_per_packet=1)
        switch = RMTSwitch(config, app)
        result = switch.run(app.workload(config.port_speed_bps))
        assert app.collect_results(result.delivered) == app.expected_result()
        return switch, result

    def test_bytes_match_packets(self, small_rmt_config):
        switch, result = self._run(small_rmt_config)
        assert result.recirculated_packets > 0
        # Every loop moved at least a minimum frame's worth of wire bytes.
        assert result.recirculated_wire_bytes >= 84 * result.recirculated_packets

    def test_meta_recirculation_counter_stamped(self, small_rmt_config):
        """The loopback stamps the packet it loops (delivered packets are
        later multicast copies with fresh metadata, so probe directly)."""
        from repro.net.traffic import make_coflow_packet

        switch = RMTSwitch(small_rmt_config)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        packet.meta.ingress_port = 0
        packet.meta.egress_port = 0
        switch._recirculate_to(packet, pipeline=1, ready=0.0)
        assert packet.meta.recirculations == 1
        assert switch._result.recirculated_packets == 1
        assert switch._result.recirculated_wire_bytes == packet.wire_bytes

    def test_loopback_port_stats_populated(self, small_rmt_config):
        switch, result = self._run(small_rmt_config)
        loop_bytes = sum(p.wire_bytes_sent for p in switch.recirc_ports)
        assert loop_bytes == result.recirculated_wire_bytes

    def test_counter_matches_result(self, small_rmt_config):
        switch, result = self._run(small_rmt_config)
        assert (
            result.counters["rmt.recirculations"]
            == result.recirculated_packets
        )

    def test_trace_events_match_counter(self, small_rmt_config):
        """Every recirculation shows up exactly once in the trace: the
        per-event count equals the aggregate counter on a workload where
        workers span both pipelines (so foreign-destination packets must
        take the loopback)."""
        from repro.telemetry import Category, Telemetry

        config = dataclasses.replace(
            small_rmt_config, state_mode=StateMode.RECIRCULATE
        )
        telemetry = Telemetry()
        app = ParameterServerApp([0, 1, 4, 5], 64, elements_per_packet=1)
        switch = RMTSwitch(config, app, telemetry=telemetry)
        result = switch.run(app.workload(config.port_speed_bps))

        assert result.recirculated_packets > 0
        recirc_events = list(
            telemetry.trace.events(category=Category.RECIRC)
        )
        assert len(recirc_events) == result.recirculated_packets
        # Each event carries the loop's cost and identity.
        for event in recirc_events:
            assert event.name == "packet.recirculated"
            assert event.packet_id is not None
            assert event.args["wire_bytes"] >= 84
        # The trace agrees with the delivery counters too.
        assert telemetry.trace.count(name="packet.delivered") == len(
            result.delivered
        )
