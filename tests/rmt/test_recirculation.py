"""Focused tests for the recirculation path accounting."""

from __future__ import annotations

import dataclasses

import pytest

from repro.apps import ParameterServerApp
from repro.rmt.config import StateMode
from repro.rmt.switch import RMTSwitch


class TestRecirculationAccounting:
    def _run(self, config):
        app = ParameterServerApp([0, 1, 4, 5], 64, elements_per_packet=1)
        switch = RMTSwitch(config, app)
        result = switch.run(app.workload(config.port_speed_bps))
        assert app.collect_results(result.delivered) == app.expected_result()
        return switch, result

    def test_bytes_match_packets(self, small_rmt_config):
        switch, result = self._run(small_rmt_config)
        assert result.recirculated_packets > 0
        # Every loop moved at least a minimum frame's worth of wire bytes.
        assert result.recirculated_wire_bytes >= 84 * result.recirculated_packets

    def test_meta_recirculation_counter_stamped(self, small_rmt_config):
        """The loopback stamps the packet it loops (delivered packets are
        later multicast copies with fresh metadata, so probe directly)."""
        from repro.net.traffic import make_coflow_packet

        switch = RMTSwitch(small_rmt_config)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        packet.meta.ingress_port = 0
        packet.meta.egress_port = 0
        switch._recirculate_to(packet, pipeline=1, ready=0.0)
        assert packet.meta.recirculations == 1
        assert switch._result.recirculated_packets == 1
        assert switch._result.recirculated_wire_bytes == packet.wire_bytes

    def test_loopback_port_stats_populated(self, small_rmt_config):
        switch, result = self._run(small_rmt_config)
        loop_bytes = sum(p.wire_bytes_sent for p in switch.recirc_ports)
        assert loop_bytes == result.recirculated_wire_bytes

    def test_counter_matches_result(self, small_rmt_config):
        switch, result = self._run(small_rmt_config)
        assert (
            result.counters["rmt.recirculations"]
            == result.recirculated_packets
        )
