"""Tests for RMT configuration (repro.rmt.config)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.rmt.config import RMTConfig, StateMode, table2_config
from repro.units import GBPS, GHZ


class TestRMTConfig:
    def test_defaults_are_consistent(self):
        config = RMTConfig()
        assert config.ports_per_pipeline == 16
        assert config.throughput_bps == pytest.approx(6.4e12)
        assert config.required_frequency_hz <= config.frequency_hz

    def test_port_to_pipeline_map(self):
        config = RMTConfig()
        assert config.pipeline_of_port(0) == 0
        assert config.pipeline_of_port(15) == 0
        assert config.pipeline_of_port(16) == 1
        assert config.ports_of_pipeline(3) == tuple(range(48, 64))

    def test_port_out_of_range(self):
        config = RMTConfig()
        with pytest.raises(ConfigError):
            config.pipeline_of_port(64)
        with pytest.raises(ConfigError):
            config.ports_of_pipeline(4)

    def test_uneven_split_rejected(self):
        with pytest.raises(ConfigError):
            RMTConfig(num_ports=10, pipelines=4)

    def test_underclocked_design_rejected(self):
        """A config whose pipelines cannot absorb line rate must fail fast:
        this is exactly the Table 2 constraint."""
        with pytest.raises(ConfigError) as excinfo:
            RMTConfig(
                num_ports=64,
                port_speed_bps=400 * GBPS,
                pipelines=4,
                min_wire_packet_bytes=84.0,
                frequency_hz=1.62 * GHZ,
            )
        assert "GHz" in str(excinfo.value)

    def test_bigger_min_packet_rescues_the_design(self):
        """Raising the assumed minimum packet is the paper's documented
        (unsustainable) escape hatch."""
        config = RMTConfig(
            num_ports=64,
            port_speed_bps=400 * GBPS,
            pipelines=8,
            min_wire_packet_bytes=495.0,
            frequency_hz=1.62 * GHZ,
        )
        assert config.required_frequency_hz <= config.frequency_hz

    def test_sub_ethernet_min_packet_rejected(self):
        with pytest.raises(ConfigError):
            RMTConfig(min_wire_packet_bytes=60)

    def test_latency_includes_parser_and_stages(self):
        config = RMTConfig(stages_per_pipeline=12, parser_latency_cycles=4)
        assert config.pipeline_latency_s == pytest.approx(16 / config.frequency_hz)


class TestTable2Configs:
    @pytest.mark.parametrize("row", range(5))
    def test_each_row_is_buildable(self, row):
        config = table2_config(row)
        assert config.required_frequency_hz <= config.frequency_hz * (1 + 1e-9)

    def test_row_out_of_range(self):
        with pytest.raises(ConfigError):
            table2_config(5)

    def test_state_mode_default(self):
        assert RMTConfig().state_mode is StateMode.EGRESS_PIN
