"""Tests for the pipeline engine (repro.rmt.pipeline)."""

from __future__ import annotations

import pytest

from repro.arch.decision import Decision, Verdict
from repro.errors import ConfigError, SimulationError
from repro.net.traffic import make_coflow_packet
from repro.rmt.pipeline import Pipeline
from repro.sim.component import Component


def _pipeline(**kwargs) -> Pipeline:
    defaults = dict(
        index=0,
        region="ingress",
        frequency_hz=1e9,
        parent=Component("test"),
        stages=12,
        attached_ports=(0, 1),
    )
    defaults.update(kwargs)
    return Pipeline(**defaults)  # type: ignore[arg-type]


class TestStructure:
    def test_stage_ladder_built(self):
        pipeline = _pipeline(stages=8)
        assert len(pipeline.stages) == 8
        assert pipeline.stages[3].path.endswith("stage3")

    def test_latency(self):
        pipeline = _pipeline(stages=12, parser_latency_cycles=4)
        assert pipeline.latency_s == pytest.approx(16e-9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            _pipeline(frequency_hz=0)
        with pytest.raises(ConfigError):
            _pipeline(stages=0)
        with pytest.raises(ConfigError):
            _pipeline(array_width=0)


class TestRegisters:
    def test_lazy_creation_and_reuse(self):
        pipeline = _pipeline()
        reg = pipeline.get_register("acc", 128)
        assert pipeline.get_register("acc", 128) is reg

    def test_size_conflict_rejected(self):
        pipeline = _pipeline()
        pipeline.get_register("acc", 128)
        with pytest.raises(ConfigError):
            pipeline.get_register("acc", 256)

    def test_registers_are_pipeline_local(self):
        """The architectural point: two pipelines never share registers."""
        parent = Component("switch")
        a = Pipeline(0, "ingress", 1e9, parent, attached_ports=(0,))
        b = Pipeline(1, "ingress", 1e9, parent, attached_ports=(1,))
        a.get_register("acc", 8).add(0, 5)
        assert b.get_register("acc", 8).read(0) == 0


class TestTables:
    def test_install_and_get(self):
        from repro.tables.mat import MatchKind, MatchTable

        pipeline = _pipeline()
        table = MatchTable("t", MatchKind.EXACT, 32, 16)
        pipeline.install_table(table)
        assert pipeline.get_table("t") is table

    def test_duplicate_install_rejected(self):
        from repro.tables.mat import MatchKind, MatchTable

        pipeline = _pipeline()
        pipeline.install_table(MatchTable("t", MatchKind.EXACT, 32, 16))
        with pytest.raises(ConfigError):
            pipeline.install_table(MatchTable("t", MatchKind.EXACT, 32, 16))

    def test_missing_table_raises(self):
        with pytest.raises(ConfigError):
            _pipeline().get_table("ghost")


class TestServiceTiming:
    def test_one_packet_per_cycle_throughput(self):
        """Back-to-back ready packets are serviced one cycle apart — the
        line-rate discipline of the whole architecture."""
        pipeline = _pipeline(frequency_hz=1e9)
        starts = []
        for _ in range(5):
            packet = make_coflow_packet(1, 0, 0, [(1, 1)])
            record = pipeline.service(packet, 0.0, None)
            starts.append(record.service_start)
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(g == pytest.approx(1e-9) for g in gaps)

    def test_idle_pipeline_services_immediately(self):
        pipeline = _pipeline()
        record = pipeline.service(make_coflow_packet(1, 0, 0, [(1, 1)]), 5.0, None)
        assert record.service_start == 5.0
        assert record.queueing_delay == 0.0

    def test_exit_time_adds_fill_latency(self):
        pipeline = _pipeline(stages=12, parser_latency_cycles=4)
        record = pipeline.service(make_coflow_packet(1, 0, 0, [(1, 1)]), 0.0, None)
        assert record.exit_time == pytest.approx(16e-9)

    def test_busy_accounting(self):
        pipeline = _pipeline(frequency_hz=1e9)
        for _ in range(3):
            pipeline.service(make_coflow_packet(1, 0, 0, [(1, 1)]), 0.0, None)
        assert pipeline.busy_seconds == pytest.approx(3e-9)
        assert pipeline.utilization(10e-9) == pytest.approx(0.3)

    def test_negative_ready_time_rejected(self):
        with pytest.raises(SimulationError):
            _pipeline().service(make_coflow_packet(1, 0, 0, [(1, 1)]), -1.0, None)


class TestServiceFunction:
    def test_hook_sees_parsed_phv_and_modifies_packet(self):
        pipeline = _pipeline()

        def hook(ctx, packet, phv):
            phv["ipv4.ttl"] = 7
            return Decision.forward()

        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        record = pipeline.service(packet, 0.0, hook)
        assert record.decision.verdict is Verdict.FORWARD
        assert packet.header("ipv4")["ttl"] == 7

    def test_hook_context_exposes_pipeline_identity(self):
        pipeline = _pipeline(index=3, region="egress", attached_ports=(4, 5))
        seen = {}

        def hook(ctx, packet, phv):
            seen["index"] = ctx.pipeline_index
            seen["region"] = ctx.region
            seen["ports"] = ctx.attached_ports
            seen["width"] = ctx.array_width
            return Decision.forward()

        pipeline.service(make_coflow_packet(1, 0, 0, [(1, 1)]), 0.0, hook)
        assert seen == {
            "index": 3, "region": "egress", "ports": (4, 5), "width": 1
        }

    def test_drop_meta_from_hook_overrides_decision(self):
        pipeline = _pipeline()

        def hook(ctx, packet, phv):
            phv.set_meta("drop", 1)
            phv.set_meta("drop_reason", "acl")
            return Decision.forward()

        record = pipeline.service(make_coflow_packet(1, 0, 0, [(1, 1)]), 0.0, hook)
        assert record.decision.verdict is Verdict.DROP
        assert record.decision.drop_reason == "acl"

    def test_width_enforcement_for_stateful_hooks(self):
        """A multi-element packet must not reach a stateful hook on a
        scalar pipeline (section 2 issue 2)."""
        pipeline = _pipeline(array_width=1)
        packet = make_coflow_packet(1, 0, 0, [(1, 1), (2, 2)])
        with pytest.raises(SimulationError):
            pipeline.service(
                packet, 0.0, lambda c, p, v: Decision.forward(), enforce_width=True
            )

    def test_wide_packet_ok_on_array_pipeline(self):
        pipeline = _pipeline(array_width=16)
        packet = make_coflow_packet(1, 0, 0, [(i, i) for i in range(16)])
        record = pipeline.service(
            packet, 0.0, lambda c, p, v: Decision.forward(), enforce_width=True
        )
        assert record.decision.verdict is Verdict.FORWARD

    def test_counters_track_packets_and_elements(self):
        pipeline = _pipeline()
        pipeline.service(make_coflow_packet(1, 0, 0, [(1, 1), (2, 2)]), 0.0, None)
        assert pipeline.stats.value(f"{pipeline.path}.packets") == 1
        assert pipeline.stats.value(f"{pipeline.path}.elements") == 2
