"""Tests for the traffic manager (repro.rmt.traffic_manager)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.net.traffic import make_coflow_packet
from repro.rmt.traffic_manager import TrafficManager
from repro.sim.component import Component


def _tm(**kwargs) -> TrafficManager:
    defaults = dict(
        name="tm",
        parent=Component("switch"),
        route=lambda packet: (packet.meta.egress_port or 0) // 4,
        buffer_packets=4,
        latency_s=1e-8,
    )
    defaults.update(kwargs)
    return TrafficManager(**defaults)  # type: ignore[arg-type]


def _packet(egress_port=0):
    packet = make_coflow_packet(1, 0, 0, [(1, 1)])
    packet.meta.egress_port = egress_port
    return packet


class TestAdmit:
    def test_routes_by_egress_port(self):
        tm = _tm()
        admitted = tm.admit(_packet(egress_port=5), 0.0)
        assert admitted is not None
        pipeline, deliver = admitted
        assert pipeline == 1
        assert deliver == pytest.approx(1e-8)

    def test_pipeline_override_skips_route(self):
        tm = _tm(route=lambda p: (_ for _ in ()).throw(AssertionError))
        admitted = tm.admit(_packet(), 0.0, pipeline=3)
        assert admitted is not None and admitted[0] == 3

    def test_buffer_full_drops(self):
        tm = _tm(buffer_packets=2)
        assert tm.admit(_packet(), 0.0) is not None
        assert tm.admit(_packet(), 0.0) is not None
        dropped = _packet()
        assert tm.admit(dropped, 0.0) is None
        assert dropped.meta.drop_reason == "tm_buffer_full"

    def test_release_frees_capacity(self):
        tm = _tm(buffer_packets=1)
        packet = _packet()
        assert tm.admit(packet, 0.0) is not None
        tm.release(packet)
        assert tm.admit(_packet(), 0.0) is not None

    def test_release_underflow_rejected(self):
        tm = _tm()
        with pytest.raises(ConfigError):
            tm.release(_packet())

    def test_occupancy_tracking(self):
        tm = _tm()
        a, b = _packet(), _packet()
        tm.admit(a, 0.0)
        tm.admit(b, 0.0)
        assert tm.occupancy == 2
        assert tm.peak_occupancy == 2
        tm.release(a)
        assert tm.occupancy == 1
        assert tm.peak_occupancy == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            _tm(buffer_packets=0)
        with pytest.raises(ConfigError):
            _tm(latency_s=-1.0)


class TestMulticast:
    def test_one_copy_per_port(self):
        tm = _tm(buffer_packets=8)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        deliveries = tm.multicast_admit(packet, (0, 4, 8), 0.0)
        assert len(deliveries) == 3
        ports = [copy.meta.egress_port for copy, _, _ in deliveries]
        assert ports == [0, 4, 8]
        pipelines = [pipe for _, pipe, _ in deliveries]
        assert pipelines == [0, 1, 2]

    def test_copies_are_independent_packets(self):
        tm = _tm(buffer_packets=8)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        deliveries = tm.multicast_admit(packet, (0, 4), 0.0)
        ids = {copy.packet_id for copy, _, _ in deliveries}
        assert len(ids) == 2
        assert packet.packet_id not in ids

    def test_partial_delivery_under_pressure(self):
        tm = _tm(buffer_packets=2)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        deliveries = tm.multicast_admit(packet, (0, 4, 8), 0.0)
        assert len(deliveries) == 2  # third copy dropped

    def test_empty_port_list_rejected(self):
        tm = _tm()
        with pytest.raises(ConfigError):
            tm.multicast_admit(make_coflow_packet(1, 0, 0, [(1, 1)]), (), 0.0)
