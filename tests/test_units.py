"""Tests for wire-level unit arithmetic (repro.units)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.units import (
    BPPS,
    ETHERNET_MIN_FRAME_BYTES,
    ETHERNET_MIN_WIRE_BYTES,
    ETHERNET_OVERHEAD_BYTES,
    GBPS,
    GHZ,
    MPPS,
    format_si,
    frame_bytes_from_wire,
    min_wire_bytes_for_rate,
    packet_rate,
    pipeline_frequency,
    wire_bytes,
)


class TestWireBytes:
    def test_minimum_frame_wire_footprint_is_84(self):
        assert wire_bytes(ETHERNET_MIN_FRAME_BYTES) == 84

    def test_overhead_is_20_bytes(self):
        assert ETHERNET_OVERHEAD_BYTES == 20
        assert wire_bytes(100) == 120

    def test_sub_minimum_frame_rejected(self):
        with pytest.raises(ConfigError):
            wire_bytes(63)

    def test_roundtrip_with_frame_bytes_from_wire(self):
        assert frame_bytes_from_wire(wire_bytes(200)) == 200

    @given(st.integers(min_value=64, max_value=9000))
    def test_wire_always_exceeds_frame(self, frame):
        assert wire_bytes(frame) == frame + 20


class TestPacketRate:
    def test_paper_example_64x10g_is_952mpps(self):
        """Section 2(3): 64x10 Gbps at 84 B wire packets ~ 952 Mpps."""
        rate = packet_rate(64 * 10 * GBPS, ETHERNET_MIN_WIRE_BYTES)
        assert rate == pytest.approx(952.38 * MPPS, rel=1e-3)

    def test_paper_example_1600g_is_2_38bpps(self):
        """Section 3.3: a 1.6 Tbps port delivers ~2.38 Bpps at minimum size."""
        rate = packet_rate(1600 * GBPS, ETHERNET_MIN_WIRE_BYTES)
        assert rate == pytest.approx(2.38 * BPPS, rel=1e-2)

    def test_zero_link_rejected(self):
        with pytest.raises(ConfigError):
            packet_rate(0, 84)

    def test_zero_packet_rejected(self):
        with pytest.raises(ConfigError):
            packet_rate(GBPS, 0)

    @given(
        st.floats(min_value=1e9, max_value=1e14),
        st.floats(min_value=84, max_value=10000),
    )
    def test_rate_times_wire_bits_recovers_link(self, link, wire):
        rate = packet_rate(link, wire)
        assert rate * wire * 8 == pytest.approx(link, rel=1e-9)


class TestPipelineFrequency:
    def test_fractional_ports_per_pipeline(self):
        """ADCP demux: 0.5 ports/pipeline halves the needed clock."""
        full = pipeline_frequency(800 * GBPS, 1, 84)
        half = pipeline_frequency(800 * GBPS, 0.5, 84)
        assert half == pytest.approx(full / 2)

    def test_table2_row2_frequency(self):
        freq = pipeline_frequency(100 * GBPS, 16, 160)
        assert freq == pytest.approx(1.25 * GHZ)

    def test_invalid_ports_rejected(self):
        with pytest.raises(ConfigError):
            pipeline_frequency(GBPS, 0, 84)


class TestMinWireBytesForRate:
    def test_inverse_of_packet_rate(self):
        wire = min_wire_bytes_for_rate(400 * GBPS * 8, 1.62 * GHZ)
        assert packet_rate(400 * GBPS * 8, wire) == pytest.approx(1.62 * GHZ)

    def test_table2_row3_min_packet_is_about_247(self):
        """8x400G under a 1.62 GHz clock needs ~247 B minimum packets."""
        wire = min_wire_bytes_for_rate(8 * 400 * GBPS, 1.62 * GHZ)
        assert wire == pytest.approx(247, abs=1.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(ConfigError):
            min_wire_bytes_for_rate(GBPS, 0)


class TestFormatSi:
    def test_tera(self):
        assert format_si(12.8e12, "bps") == "12.8 Tbps"

    def test_giga(self):
        assert format_si(1.25e9, "Hz") == "1.25 GHz"

    def test_small_values_unprefixed(self):
        assert format_si(5.0, "x") == "5 x"
