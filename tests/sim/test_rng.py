"""Tests for seeded randomness helpers (repro.sim.rng)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.rng import make_rng, split_rng, stable_hash64


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7)
        b = make_rng(7)
        assert list(a.integers(0, 100, 10)) == list(b.integers(0, 100, 10))

    def test_different_seeds_differ(self):
        a = make_rng(1)
        b = make_rng(2)
        assert list(a.integers(0, 2**31, 10)) != list(b.integers(0, 2**31, 10))

    def test_default_seed_is_stable(self):
        assert list(make_rng().integers(0, 100, 5)) == list(
            make_rng().integers(0, 100, 5)
        )

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigError):
            make_rng(-1)


class TestSplitRng:
    def test_children_are_independent_but_deterministic(self):
        children_a = split_rng(make_rng(5), 3)
        children_b = split_rng(make_rng(5), 3)
        for a, b in zip(children_a, children_b):
            assert list(a.integers(0, 100, 5)) == list(b.integers(0, 100, 5))

    def test_children_differ_from_each_other(self):
        children = split_rng(make_rng(5), 2)
        assert list(children[0].integers(0, 2**31, 10)) != list(
            children[1].integers(0, 2**31, 10)
        )

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigError):
            split_rng(make_rng(), 0)


class TestStableHash64:
    def test_deterministic_known_values(self):
        # FNV-1a must not drift between versions: pin a few values.
        assert stable_hash64(0) == stable_hash64(0)
        assert stable_hash64("abc") == stable_hash64("abc")
        assert stable_hash64(b"abc") == stable_hash64("abc")

    def test_distinct_inputs_rarely_collide(self):
        hashes = {stable_hash64(i) for i in range(10000)}
        assert len(hashes) == 10000

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_fits_in_64_bits(self, value):
        assert 0 <= stable_hash64(value) < 2**64

    @given(st.integers(min_value=0, max_value=2**31))
    def test_spread_over_small_modulus(self, value):
        # Placement uses hash % n; result must always be a valid index.
        assert 0 <= stable_hash64(value) % 4 < 4
