"""Tests for the discrete-event kernel (repro.sim.event)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.event import EventQueue, Simulator


class TestEventQueue:
    def test_pop_returns_earliest(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        first = q.pop()
        assert first is not None and first.time == 1.0

    def test_fifo_tiebreak_at_equal_time(self):
        q = EventQueue()
        q.push(1.0, lambda: "first")
        q.push(1.0, lambda: "second")
        a = q.pop()
        b = q.pop()
        assert a is not None and b is not None
        assert a.sequence < b.sequence

    def test_priority_orders_within_time(self):
        q = EventQueue()
        q.push(1.0, lambda: None, priority=5)
        high = q.push(1.0, lambda: None, priority=1)
        assert q.pop() is high

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        event.cancel()
        popped = q.pop()
        assert popped is not None and popped.time == 2.0

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        event.cancel()
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(3.0, lambda: None)
        event.cancel()
        assert q.peek_time() == 3.0

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None
        assert EventQueue().pop() is None


class TestSimulator:
    def test_runs_events_in_time_order(self):
        sim = Simulator()
        order: list[str] = []
        sim.at(2.0, lambda: order.append("late"))
        sim.at(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == 2.0

    def test_after_is_relative(self):
        sim = Simulator()
        times: list[float] = []
        sim.at(1.0, lambda: sim.after(0.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.5]

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_until_bound_leaves_later_events_queued(self):
        sim = Simulator()
        fired: list[float] = []
        sim.at(1.0, lambda: fired.append(1.0))
        sim.at(5.0, lambda: fired.append(5.0))
        sim.run(until=2.0)
        assert fired == [1.0]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1.0, 5.0]

    def test_until_inclusive(self):
        sim = Simulator()
        fired: list[float] = []
        sim.at(2.0, lambda: fired.append(2.0))
        sim.run(until=2.0)
        assert fired == [2.0]

    def test_max_events_bound(self):
        sim = Simulator()
        for i in range(10):
            sim.at(float(i), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.run() == 7

    def test_events_scheduled_during_run_are_dispatched(self):
        sim = Simulator()
        seen: list[str] = []

        def outer() -> None:
            seen.append("outer")
            sim.after(1.0, lambda: seen.append("inner"))

        sim.at(0.0, outer)
        sim.run()
        assert seen == ["outer", "inner"]

    def test_step_dispatches_one(self):
        sim = Simulator()
        sim.at(0.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_events_dispatched_counter(self):
        sim = Simulator()
        sim.at(0.0, lambda: None)
        sim.at(1.0, lambda: None)
        sim.run()
        assert sim.events_dispatched == 2
