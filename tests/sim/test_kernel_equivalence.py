"""Differential equivalence of the event-queue backends.

The kernel's correctness claim is total: every backend dispatches the
identical ``(time, priority, sequence)`` order, so swapping backends can
never change a simulation result — only its wall-clock speed.  These
tests drive randomly generated schedules through the ``heap`` and
``calendar`` backends side by side (Hypothesis shrinks failures to
minimal schedules) and require bit-identical dispatch sequences, final
clocks, and event counts.

The op language covers the full scheduling surface: absolute scheduling
(``at``), relative scheduling (``after``), priorities (including ties),
cancellation of pending events, events that schedule further events from
inside their own dispatch, and bounded drains (``until``).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.event import (
    CALENDAR_BOOTSTRAP_PUSHES,
    CalendarQueue,
    EventQueue,
    Simulator,
)

# Times are drawn from a small grid so equal-time ties (the hardest case
# for a bucketed queue) are common rather than astronomically rare.
_TIMES = st.integers(0, 40).map(lambda t: t * 0.25)
_PRIORITIES = st.integers(-2, 2)


@st.composite
def schedules(draw):
    """A schedule: ops applied up front, plus nested ops fired mid-run.

    Each top-level op is one of:
      ("at", time, priority, nested) — schedule; ``nested`` is a list of
          (delay, priority) pairs the event schedules when it fires;
      ("after", delay, priority, nested) — relative variant;
      ("cancel", index) — cancel the index-th scheduled event (modulo the
          number scheduled so far; ignored when nothing is pending).
    """
    nested = st.lists(
        st.tuples(_TIMES, _PRIORITIES), min_size=0, max_size=2
    )
    op = st.one_of(
        st.tuples(st.just("at"), _TIMES, _PRIORITIES, nested),
        st.tuples(st.just("after"), _TIMES, _PRIORITIES, nested),
        st.tuples(st.just("cancel"), st.integers(0, 64)),
    )
    ops = draw(st.lists(op, min_size=1, max_size=40))
    until = draw(st.one_of(st.none(), _TIMES))
    return ops, until


def _run_schedule(ops, until, backend):
    """Apply a schedule to a fresh Simulator; return its observable log.

    The log records every dispatch as ``(tag, now)`` — ``tag`` is the
    schedule position that created the event, so two backends agree iff
    they fired the same events at the same clock readings in the same
    order.
    """
    sim = Simulator(queue_backend=backend)
    log: list[tuple[str, float]] = []
    handles: list = []

    def make_action(tag, nested):
        def action() -> None:
            log.append((tag, sim.now))
            for i, (delay, priority) in enumerate(nested):
                handles.append(
                    sim.after(delay, make_action(f"{tag}.n{i}", ()), priority)
                )

        return action

    for index, op in enumerate(ops):
        if op[0] == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
            continue
        kind, value, priority, nested = op
        action = make_action(f"op{index}", nested)
        if kind == "at":
            handles.append(sim.at(value, action, priority))
        else:
            handles.append(sim.after(value, action, priority))

    dispatched = sim.run(until=until)
    return log, sim.now, dispatched, sim.events_dispatched


class TestBackendEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(schedules())
    def test_heap_and_calendar_dispatch_identically(self, schedule):
        ops, until = schedule
        heap_run = _run_schedule(ops, until, "heap")
        calendar_run = _run_schedule(ops, until, "calendar")
        assert heap_run == calendar_run

    @settings(max_examples=100, deadline=None)
    @given(schedules())
    def test_auto_matches_heap(self, schedule):
        ops, until = schedule
        assert _run_schedule(ops, until, "heap") == _run_schedule(
            ops, until, "auto"
        )

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(_TIMES, _PRIORITIES), min_size=1, max_size=200
        )
    )
    def test_queue_drain_order_matches(self, pushes):
        """Raw queue-level check: identical pop order, including beyond
        the calendar's heap-mode bootstrap threshold."""
        heap_q = EventQueue()
        cal_q = CalendarQueue()
        for time, priority in pushes:
            heap_q.push(time, lambda: None, priority)
            cal_q.push(time, lambda: None, priority)
        while True:
            a = heap_q.pop()
            b = cal_q.pop()
            if a is None or b is None:
                assert a is None and b is None
                break
            assert (a.time, a.priority, a.sequence) == (
                b.time,
                b.priority,
                b.sequence,
            )

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.tuples(_TIMES, _PRIORITIES), min_size=1, max_size=120),
        st.data(),
    )
    def test_drain_order_matches_under_cancellation(self, pushes, data):
        heap_q = EventQueue()
        cal_q = CalendarQueue()
        heap_events = []
        cal_events = []
        for time, priority in pushes:
            heap_events.append(heap_q.push(time, lambda: None, priority))
            cal_events.append(cal_q.push(time, lambda: None, priority))
        to_cancel = data.draw(
            st.lists(
                st.integers(0, len(pushes) - 1), max_size=len(pushes)
            )
        )
        for index in set(to_cancel):
            heap_events[index].cancel()
            cal_events[index].cancel()
        assert len(heap_q) == len(cal_q)
        while True:
            a = heap_q.pop()
            b = cal_q.pop()
            if a is None or b is None:
                assert a is None and b is None
                break
            assert (a.time, a.priority, a.sequence) == (
                b.time,
                b.priority,
                b.sequence,
            )


class TestCalendarInternals:
    def test_bootstrap_crossing_preserves_order(self):
        """Pushes straddling the heap-to-buckets migration keep order."""
        cal_q = CalendarQueue()
        heap_q = EventQueue()
        total = CALENDAR_BOOTSTRAP_PUSHES * 3
        for i in range(total):
            time = float((i * 7919) % 97)  # scrambled, many duplicates
            cal_q.push(time, lambda: None)
            heap_q.push(time, lambda: None)
        order_cal = []
        order_heap = []
        while (event := cal_q.pop()) is not None:
            order_cal.append((event.time, event.sequence))
        while (event := heap_q.pop()) is not None:
            order_heap.append((event.time, event.sequence))
        assert order_cal == order_heap

    def test_interleaved_push_pop_across_years(self):
        """Popping while pushing ever-later times forces year re-basing;
        order must stay exact throughout."""
        cal_q = CalendarQueue()
        heap_q = EventQueue()
        popped_cal = []
        popped_heap = []
        time = 0.0
        for round_ in range(40):
            for i in range(16):
                time += 0.5 + (i % 3)
                cal_q.push(time, lambda: None)
                heap_q.push(time, lambda: None)
            for _ in range(10):
                a = cal_q.pop()
                b = heap_q.pop()
                assert (a is None) == (b is None)
                if a is not None:
                    popped_cal.append((a.time, a.sequence))
                    popped_heap.append((b.time, b.sequence))
        assert popped_cal == popped_heap

    def test_simulator_reports_selected_backend(self):
        assert Simulator(queue_backend="heap").queue.backend == "heap"
        assert Simulator(queue_backend="calendar").queue.backend in (
            "calendar",
        )
        assert not math.isnan(Simulator(queue_backend="auto").now)


class GridProbe:
    """Deadline-aware tumbling-grid probe (the contract docs/KERNEL.md
    specifies and the telemetry samplers implement): calls strictly
    before the current boundary are no-ops, and a call at or past it
    rolls the boundary forward.  It logs every boundary crossing with a
    caller-supplied sample so two runs agree iff their probes fired at
    the same positions in the dispatch stream.
    """

    def __init__(self, width, sample=None):
        self.width = width
        self.index = 0
        self.calls = 0
        self.crossings: list[tuple[float, object]] = []
        self._sample = sample

    def next_deadline_s(self) -> float:
        return (self.index + 1) * self.width

    def __call__(self, new_time_s: float) -> None:
        self.calls += 1
        while (self.index + 1) * self.width <= new_time_s:
            boundary = (self.index + 1) * self.width
            sample = self._sample() if self._sample is not None else None
            self.crossings.append((boundary, sample))
            self.index += 1


def _run_probed_schedule(
    ops, until, backend, widths, force_instrumented=False
):
    """Like ``_run_schedule`` but with grid probes attached.

    Returns everything observable: the dispatch log, each probe's
    crossing log (boundary, dispatches-so-far), the final clock, and the
    dispatch count.  ``force_instrumented=True`` routes the identical
    schedule through the reference loop via ``max_events``.
    """
    sim = Simulator(queue_backend=backend)
    log: list[tuple[str, float]] = []
    probes = [GridProbe(w, sample=lambda: len(log)) for w in widths]
    for probe in probes:
        sim.add_time_probe(probe)
    handles: list = []

    def make_action(tag, nested):
        def action() -> None:
            log.append((tag, sim.now))
            for i, (delay, priority) in enumerate(nested):
                handles.append(
                    sim.after(delay, make_action(f"{tag}.n{i}", ()), priority)
                )

        return action

    for index, op in enumerate(ops):
        if op[0] == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
            continue
        kind, value, priority, nested = op
        action = make_action(f"op{index}", nested)
        if kind == "at":
            handles.append(sim.at(value, action, priority))
        else:
            handles.append(sim.after(value, action, priority))

    if force_instrumented:
        dispatched = sim.run(until=until, max_events=1 << 60)
    else:
        assert sim._probe_deadline() == min(w for w in widths)
        dispatched = sim.run(until=until)
    observable = (
        log,
        [probe.crossings for probe in probes],
        sim.now,
        dispatched,
    )
    return observable, sum(probe.calls for probe in probes)


_WIDTHS = st.sampled_from([0.25, 0.5, 0.75, 1.3, 2.0])


class TestProbedFastPathEquivalence:
    """The probed fast path must be observation-equivalent to the
    instrumented reference loop: same dispatch log, same boundary
    crossings at the same positions in the dispatch stream, same final
    clock — while calling the probe no more often."""

    @settings(max_examples=200, deadline=None)
    @given(schedules(), _WIDTHS)
    def test_probed_fast_matches_instrumented(self, schedule, width):
        ops, until = schedule
        fast, fast_calls = _run_probed_schedule(ops, until, "heap", [width])
        ref, ref_calls = _run_probed_schedule(
            ops, until, "heap", [width], force_instrumented=True
        )
        assert fast == ref
        # Between boundaries the fast path never fires the probe; the
        # reference loop fires it on every strict time advance.
        assert fast_calls <= ref_calls

    @settings(max_examples=100, deadline=None)
    @given(schedules(), _WIDTHS)
    def test_probed_backends_agree(self, schedule, width):
        ops, until = schedule
        heap, _ = _run_probed_schedule(ops, until, "heap", [width])
        calendar, _ = _run_probed_schedule(ops, until, "calendar", [width])
        assert heap == calendar

    @settings(max_examples=100, deadline=None)
    @given(schedules(), _WIDTHS, _WIDTHS)
    def test_chained_probes_match_instrumented(self, schedule, w1, w2):
        """Two grid probes chain; the dispatcher tracks the min deadline."""
        ops, until = schedule
        fast, _ = _run_probed_schedule(ops, until, "heap", [w1, w2])
        ref, _ = _run_probed_schedule(
            ops, until, "heap", [w1, w2], force_instrumented=True
        )
        assert fast == ref

    def test_fast_path_skips_intermediate_advances(self):
        """A dense run with one wide window: the fast path fires the
        probe only at crossings, the reference at every advance."""
        ops = [("at", i * 0.25, 0, []) for i in range(40)]
        fast, fast_calls = _run_probed_schedule(ops, None, "heap", [2.0])
        ref, ref_calls = _run_probed_schedule(
            ops, None, "heap", [2.0], force_instrumented=True
        )
        assert fast == ref
        assert fast_calls < ref_calls

    def test_boundary_tick_event_probed_first(self):
        """An event exactly on a boundary fires *after* the probe: the
        crossing's dispatch count excludes it (window semantics)."""
        ops = [("at", 0.5, 0, []), ("at", 1.0, 0, []), ("at", 1.5, 0, [])]
        (log, crossings, now, dispatched), _ = _run_probed_schedule(
            ops, None, "heap", [1.0]
        )
        assert dispatched == 3 and now == 1.5
        # One crossing (at 1.0), having seen only the 0.5 dispatch.
        assert crossings == [[(1.0, 1)]]

    def test_until_gap_fires_pending_crossings(self):
        """Draining to a bound past the last event still probes the
        bound when later events remain queued (matching the reference)."""
        ops = [("at", 0.25, 0, []), ("at", 9.0, 0, [])]
        fast, _ = _run_probed_schedule(ops, 5.0, "heap", [1.0])
        ref, _ = _run_probed_schedule(
            ops, 5.0, "heap", [1.0], force_instrumented=True
        )
        assert fast == ref
        log, crossings, now, dispatched = fast
        assert now == 5.0 and dispatched == 1
        assert [b for b, _ in crossings[0]] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stuck_deadline_raises(self):
        """A probe that never advances its deadline violates the
        contract; the fast path fails loudly instead of spinning."""

        class Stuck:
            def next_deadline_s(self) -> float:
                return 1.0

            def __call__(self, new_time_s: float) -> None:
                pass

        sim = Simulator(queue_backend="heap")
        sim.add_time_probe(Stuck())
        sim.at(2.0, lambda: None)
        try:
            sim.run()
        except Exception as exc:
            assert "deadline contract" in str(exc)
        else:  # pragma: no cover - the point of the test
            raise AssertionError("contract violation went undetected")

    def test_probe_without_deadline_disables_fast_path(self):
        """A probe lacking ``next_deadline_s`` keeps the reference loop
        (deadline None), and chaining it after a grid probe demotes the
        whole chain."""
        sim = Simulator(queue_backend="heap")
        sim.add_time_probe(GridProbe(1.0))
        assert sim._probe_deadline() == 1.0
        sim.add_time_probe(lambda t: None)
        assert sim._probe_deadline() is None

    def test_directly_assigned_probe_disables_fast_path(self):
        sim = Simulator(queue_backend="heap")
        sim.time_probe = GridProbe(1.0)
        assert sim._probe_deadline() is None


# --- telemetry-level differential -------------------------------------------------
#
# The observability ladder's core claim (docs/TELEMETRY.md): ``counters``
# and ``sampled`` are *pure observers* — a switch run at either level is
# bit-identical to the fully-instrumented ``full`` run in everything the
# simulation computes (dispatch order, packet ids modulo the process-
# global offset, terminal counters, the final clock), while keeping the
# ``trace is None`` fast path the instrumented run forfeits.  And the
# head-based span sampler must pick the same packets on every queue
# backend, since its decision predates the kernel entirely.

_LEVEL_WORKERS = st.lists(
    st.integers(0, 7), min_size=2, max_size=4, unique=True
)
_LEVEL_ELEMENTS = st.sampled_from([8, 16, 32])
_LEVEL_SAMPLES = st.sampled_from([1, 2, 4, 16])


def _run_at_level(level, workers, elements, sample, backend="heap"):
    """One RMT run at a telemetry level; returns its observable digest."""
    from repro.apps import ParameterServerApp
    from repro.rmt.config import RMTConfig
    from repro.rmt.switch import RMTSwitch
    from repro.telemetry import Telemetry
    from repro.units import GBPS

    telemetry = Telemetry.at_level(level, seed=0, sample=sample)
    config = RMTConfig(
        num_ports=8, pipelines=2, port_speed_bps=100 * GBPS,
        min_wire_packet_bytes=84.0, frequency_hz=1.25e9,
    )
    app = ParameterServerApp(sorted(workers), elements, elements_per_packet=1)
    switch = RMTSwitch(
        config, app, telemetry=telemetry, sim=Simulator(backend)
    )
    result = switch.run(app.workload(config.port_speed_bps))
    base = min(p.packet_id for p in result.delivered)
    digest = (
        [
            (p.packet_id - base, p.meta.egress_port, p.meta.departure_time)
            for p in result.delivered
        ],
        len(result.dropped),
        result.consumed,
        result.recirculated_packets,
        result.duration_s,
        sorted(result.counters.items()),
        switch._sim.logical_events,
        switch._sim.now,
    )
    return digest, switch, telemetry


class TestTelemetryLevelEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(_LEVEL_WORKERS, _LEVEL_ELEMENTS, _LEVEL_SAMPLES)
    def test_fast_levels_match_instrumented(
        self, workers, elements, sample
    ):
        """``counters``/``sampled`` vs ``full``: identical dispatch order
        (delivery sequence with run-relative packet ids), final counter
        values, and logical event count — with the fast path kept."""
        full, full_switch, _ = _run_at_level(
            "full", workers, elements, sample
        )
        assert full_switch.trace is not None
        for level in ("counters", "sampled"):
            fast, fast_switch, _ = _run_at_level(
                level, workers, elements, sample
            )
            assert fast == full
            assert fast_switch.trace is None
            # Batched admission really engaged (same-timestamp arrivals
            # exist whenever two or more workers inject): the logical
            # work matched above, the physical events were fewer.
            if len(workers) > 1:
                assert fast_switch._sim.events_coalesced > 0
                assert full_switch._sim.events_coalesced == 0

    @settings(max_examples=10, deadline=None)
    @given(_LEVEL_WORKERS, _LEVEL_ELEMENTS, _LEVEL_SAMPLES)
    def test_sampling_identical_across_backends(
        self, workers, elements, sample
    ):
        """The span sampler's decisions — and every record they produce —
        are byte-identical on heap, calendar, and auto backends."""
        runs = {}
        for backend in ("heap", "calendar", "auto"):
            digest, _, telemetry = _run_at_level(
                "sampled", workers, elements, sample, backend=backend
            )
            spans = telemetry.spans
            runs[backend] = (
                digest,
                spans.sampler.offered,
                spans.sampler.admitted,
                [
                    (r.span, r.packet, r.switch, r.hop, r.start_s, r.end_s)
                    for r in spans.records
                ],
            )
        assert runs["heap"] == runs["calendar"] == runs["auto"]

    def test_sampled_records_cover_only_sampled_subset(self):
        """Every record belongs to an admitted span; sample=1 records
        every packet (coverage 1.0)."""
        _, _, everything = _run_at_level("sampled", [0, 1, 4, 5], 16, 1)
        assert everything.spans.sampler.coverage == 1.0
        _, _, subset = _run_at_level("sampled", [0, 1, 4, 5], 16, 4)
        sampled_ids = {r.span for r in subset.spans.records}
        assert 0 < subset.spans.sampler.admitted < subset.spans.sampler.offered
        assert len(sampled_ids) == subset.spans.sampler.admitted


def _stateful_ledger(backend, level=None):
    """One single-switch stateful run pinned to ``backend``.

    Returns the canonical ledger text (git_sha pinned) — the artifact
    the backend-equivalence contract promises is byte-identical.
    """
    import json
    import os

    from repro.stateful.runner import run_stateful

    make_telemetry = None
    if level is not None:
        from repro.telemetry import Telemetry

        def make_telemetry():
            return Telemetry.at_level(level, seed=0, sample=4)

    previous = os.environ.get("REPRO_QUEUE_BACKEND")
    os.environ["REPRO_QUEUE_BACKEND"] = backend
    try:
        run = run_stateful(
            "synflood",
            flows=32,
            packets=160,
            seed=3,
            make_telemetry=make_telemetry,
        )
    finally:
        if previous is None:
            del os.environ["REPRO_QUEUE_BACKEND"]
        else:
            os.environ["REPRO_QUEUE_BACKEND"] = previous
    ledger = run.ledger()
    ledger["git_sha"] = "pinned"
    return json.dumps(ledger, sort_keys=True)


class TestStatefulLedgerEquivalence:
    """Stateful ledgers are part of the backend-equivalence contract."""

    def test_backends_emit_identical_stateful_ledgers(self):
        heap = _stateful_ledger("heap")
        calendar = _stateful_ledger("calendar")
        auto = _stateful_ledger("auto")
        assert heap == calendar == auto

    def test_fast_dispatch_matches_instrumented(self):
        """Full telemetry (instrumented loop, tracing on) and the fast
        counters level produce byte-identical stateful ledgers: the
        observability level must never perturb the simulated work."""
        instrumented = _stateful_ledger("heap", level="full")
        fast = _stateful_ledger("heap", level="counters")
        bare = _stateful_ledger("heap")
        assert instrumented == fast == bare
