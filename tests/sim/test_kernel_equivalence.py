"""Differential equivalence of the event-queue backends.

The kernel's correctness claim is total: every backend dispatches the
identical ``(time, priority, sequence)`` order, so swapping backends can
never change a simulation result — only its wall-clock speed.  These
tests drive randomly generated schedules through the ``heap`` and
``calendar`` backends side by side (Hypothesis shrinks failures to
minimal schedules) and require bit-identical dispatch sequences, final
clocks, and event counts.

The op language covers the full scheduling surface: absolute scheduling
(``at``), relative scheduling (``after``), priorities (including ties),
cancellation of pending events, events that schedule further events from
inside their own dispatch, and bounded drains (``until``).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.event import (
    CALENDAR_BOOTSTRAP_PUSHES,
    CalendarQueue,
    EventQueue,
    Simulator,
)

# Times are drawn from a small grid so equal-time ties (the hardest case
# for a bucketed queue) are common rather than astronomically rare.
_TIMES = st.integers(0, 40).map(lambda t: t * 0.25)
_PRIORITIES = st.integers(-2, 2)


@st.composite
def schedules(draw):
    """A schedule: ops applied up front, plus nested ops fired mid-run.

    Each top-level op is one of:
      ("at", time, priority, nested) — schedule; ``nested`` is a list of
          (delay, priority) pairs the event schedules when it fires;
      ("after", delay, priority, nested) — relative variant;
      ("cancel", index) — cancel the index-th scheduled event (modulo the
          number scheduled so far; ignored when nothing is pending).
    """
    nested = st.lists(
        st.tuples(_TIMES, _PRIORITIES), min_size=0, max_size=2
    )
    op = st.one_of(
        st.tuples(st.just("at"), _TIMES, _PRIORITIES, nested),
        st.tuples(st.just("after"), _TIMES, _PRIORITIES, nested),
        st.tuples(st.just("cancel"), st.integers(0, 64)),
    )
    ops = draw(st.lists(op, min_size=1, max_size=40))
    until = draw(st.one_of(st.none(), _TIMES))
    return ops, until


def _run_schedule(ops, until, backend):
    """Apply a schedule to a fresh Simulator; return its observable log.

    The log records every dispatch as ``(tag, now)`` — ``tag`` is the
    schedule position that created the event, so two backends agree iff
    they fired the same events at the same clock readings in the same
    order.
    """
    sim = Simulator(queue_backend=backend)
    log: list[tuple[str, float]] = []
    handles: list = []

    def make_action(tag, nested):
        def action() -> None:
            log.append((tag, sim.now))
            for i, (delay, priority) in enumerate(nested):
                handles.append(
                    sim.after(delay, make_action(f"{tag}.n{i}", ()), priority)
                )

        return action

    for index, op in enumerate(ops):
        if op[0] == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
            continue
        kind, value, priority, nested = op
        action = make_action(f"op{index}", nested)
        if kind == "at":
            handles.append(sim.at(value, action, priority))
        else:
            handles.append(sim.after(value, action, priority))

    dispatched = sim.run(until=until)
    return log, sim.now, dispatched, sim.events_dispatched


class TestBackendEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(schedules())
    def test_heap_and_calendar_dispatch_identically(self, schedule):
        ops, until = schedule
        heap_run = _run_schedule(ops, until, "heap")
        calendar_run = _run_schedule(ops, until, "calendar")
        assert heap_run == calendar_run

    @settings(max_examples=100, deadline=None)
    @given(schedules())
    def test_auto_matches_heap(self, schedule):
        ops, until = schedule
        assert _run_schedule(ops, until, "heap") == _run_schedule(
            ops, until, "auto"
        )

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(_TIMES, _PRIORITIES), min_size=1, max_size=200
        )
    )
    def test_queue_drain_order_matches(self, pushes):
        """Raw queue-level check: identical pop order, including beyond
        the calendar's heap-mode bootstrap threshold."""
        heap_q = EventQueue()
        cal_q = CalendarQueue()
        for time, priority in pushes:
            heap_q.push(time, lambda: None, priority)
            cal_q.push(time, lambda: None, priority)
        while True:
            a = heap_q.pop()
            b = cal_q.pop()
            if a is None or b is None:
                assert a is None and b is None
                break
            assert (a.time, a.priority, a.sequence) == (
                b.time,
                b.priority,
                b.sequence,
            )

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.tuples(_TIMES, _PRIORITIES), min_size=1, max_size=120),
        st.data(),
    )
    def test_drain_order_matches_under_cancellation(self, pushes, data):
        heap_q = EventQueue()
        cal_q = CalendarQueue()
        heap_events = []
        cal_events = []
        for time, priority in pushes:
            heap_events.append(heap_q.push(time, lambda: None, priority))
            cal_events.append(cal_q.push(time, lambda: None, priority))
        to_cancel = data.draw(
            st.lists(
                st.integers(0, len(pushes) - 1), max_size=len(pushes)
            )
        )
        for index in set(to_cancel):
            heap_events[index].cancel()
            cal_events[index].cancel()
        assert len(heap_q) == len(cal_q)
        while True:
            a = heap_q.pop()
            b = cal_q.pop()
            if a is None or b is None:
                assert a is None and b is None
                break
            assert (a.time, a.priority, a.sequence) == (
                b.time,
                b.priority,
                b.sequence,
            )


class TestCalendarInternals:
    def test_bootstrap_crossing_preserves_order(self):
        """Pushes straddling the heap-to-buckets migration keep order."""
        cal_q = CalendarQueue()
        heap_q = EventQueue()
        total = CALENDAR_BOOTSTRAP_PUSHES * 3
        for i in range(total):
            time = float((i * 7919) % 97)  # scrambled, many duplicates
            cal_q.push(time, lambda: None)
            heap_q.push(time, lambda: None)
        order_cal = []
        order_heap = []
        while (event := cal_q.pop()) is not None:
            order_cal.append((event.time, event.sequence))
        while (event := heap_q.pop()) is not None:
            order_heap.append((event.time, event.sequence))
        assert order_cal == order_heap

    def test_interleaved_push_pop_across_years(self):
        """Popping while pushing ever-later times forces year re-basing;
        order must stay exact throughout."""
        cal_q = CalendarQueue()
        heap_q = EventQueue()
        popped_cal = []
        popped_heap = []
        time = 0.0
        for round_ in range(40):
            for i in range(16):
                time += 0.5 + (i % 3)
                cal_q.push(time, lambda: None)
                heap_q.push(time, lambda: None)
            for _ in range(10):
                a = cal_q.pop()
                b = heap_q.pop()
                assert (a is None) == (b is None)
                if a is not None:
                    popped_cal.append((a.time, a.sequence))
                    popped_heap.append((b.time, b.sequence))
        assert popped_cal == popped_heap

    def test_simulator_reports_selected_backend(self):
        assert Simulator(queue_backend="heap").queue.backend == "heap"
        assert Simulator(queue_backend="calendar").queue.backend in (
            "calendar",
        )
        assert not math.isnan(Simulator(queue_backend="auto").now)
