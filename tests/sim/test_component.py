"""Tests for components and channels (repro.sim.component)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.sim.component import Channel, Component, connect


class TestComponent:
    def test_path_reflects_hierarchy(self):
        root = Component("switch")
        pipe = Component("pipe0", root)
        stage = Component("stage3", pipe)
        assert stage.path == "switch.pipe0.stage3"

    def test_children_registered(self):
        root = Component("root")
        child = Component("child", root)
        assert child in root.children

    def test_stats_shared_with_root(self):
        root = Component("root")
        child = Component("child", root)
        child.counter("hits").add()
        assert root.stats.value("root.child.hits") == 1.0

    def test_walk_is_depth_first(self):
        root = Component("r")
        a = Component("a", root)
        Component("a1", a)
        Component("b", root)
        names = [c.name for c in root.walk()]
        assert names == ["r", "a", "a1", "b"]

    def test_find_resolves_dotted_path(self):
        root = Component("r")
        a = Component("a", root)
        a1 = Component("a1", a)
        assert root.find("a.a1") is a1

    def test_find_unknown_raises(self):
        root = Component("r")
        with pytest.raises(ConfigError):
            root.find("missing")

    def test_invalid_names_rejected(self):
        with pytest.raises(ConfigError):
            Component("")
        with pytest.raises(ConfigError):
            Component("a.b")


class TestChannel:
    def test_fifo_order(self):
        ch: Channel[int] = Channel("c")
        ch.push(1)
        ch.push(2)
        assert ch.pop() == 1
        assert ch.pop() == 2
        assert ch.pop() is None

    def test_capacity_enforced(self):
        ch: Channel[int] = Channel("c", capacity=1)
        assert ch.try_push(1)
        assert not ch.try_push(2)
        assert ch.rejected == 1
        with pytest.raises(ConfigError):
            ch.push(3)

    def test_peak_depth_tracked(self):
        ch: Channel[int] = Channel("c")
        ch.push(1)
        ch.push(2)
        ch.pop()
        ch.push(3)
        assert ch.peak_depth == 2

    def test_drain_empties_in_order(self):
        ch: Channel[int] = Channel("c")
        for i in range(3):
            ch.push(i)
        assert ch.drain() == [0, 1, 2]
        assert ch.is_empty

    def test_peek_does_not_remove(self):
        ch: Channel[int] = Channel("c")
        ch.push(42)
        assert ch.peek() == 42
        assert len(ch) == 1

    def test_counters(self):
        ch: Channel[int] = Channel("c")
        ch.push(1)
        ch.pop()
        assert ch.pushed == 1
        assert ch.popped == 1

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            Channel("c", capacity=0)


class TestConnect:
    def test_creates_n_minus_one_channels(self):
        comps = [Component(f"c{i}") for i in range(4)]
        channels = connect(comps, capacity=8)
        assert len(channels) == 3
        assert channels[0].name == "c0->c1"
        assert all(ch.capacity == 8 for ch in channels)
