"""Seed-discipline audit: all randomness flows through ``sim/rng``.

Campaign determinism (parallel == serial, bit-identical) rests on one
invariant: no module draws randomness except through an explicitly
seeded generator from :mod:`repro.sim.rng`.  These tests enforce it the
blunt way — by scanning the source tree — so a stray ``random.random()``
or ad-hoc ``np.random.default_rng()`` fails CI with a file:line pointer
instead of surfacing as a flaky campaign.
"""

from __future__ import annotations

import inspect
import re
from pathlib import Path

import repro
from repro.telemetry.runner import TRACEABLE

SRC_ROOT = Path(repro.__file__).resolve().parent

#: The one module allowed to construct generators / import random.
RNG_MODULE = SRC_ROOT / "sim" / "rng.py"

#: stdlib ``random`` imports (module or from-form).
_STDLIB_RANDOM = re.compile(
    r"^\s*(import\s+random\b|from\s+random\s+import\b)"
)

#: ``np.random.<anything>`` uses other than the ``Generator`` type
#: annotation — constructing generators or drawing from the global
#: state is what breaks seed plumbing.
_NP_RANDOM_USE = re.compile(r"\bnp\.random\.(?!Generator\b)\w+")

#: Python's salted builtin ``hash`` on strings/objects is per-process;
#: placement and sharding must use ``stable_hash64`` instead.  (This is
#: documented in sim/rng.py; the audit covers the obvious spelling.)
_BUILTIN_HASH = re.compile(r"(?<![\w.])hash\(")


def _violations(pattern: re.Pattern, allow: set[Path]) -> list[str]:
    found = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path in allow:
            continue
        for number, line in enumerate(path.read_text().splitlines(), 1):
            stripped = line.split("#", 1)[0]
            if pattern.search(stripped):
                found.append(
                    f"{path.relative_to(SRC_ROOT)}:{number}: {line.strip()}"
                )
    return found


def test_no_stdlib_random_outside_rng_module():
    assert _violations(_STDLIB_RANDOM, {RNG_MODULE}) == []


def test_no_numpy_random_construction_outside_rng_module():
    # ``np.random.Generator`` annotations are fine anywhere; anything
    # else (default_rng, seed, the legacy global functions) is not.
    assert _violations(_NP_RANDOM_USE, {RNG_MODULE}) == []


def test_no_salted_builtin_hash_in_source():
    assert _violations(_BUILTIN_HASH, {RNG_MODULE}) == []


def test_every_workload_entry_point_accepts_a_seed():
    """All reference workload factories take an explicit ``seed``."""
    for name, factory in TRACEABLE.items():
        parameters = inspect.signature(factory).parameters
        assert "seed" in parameters, (
            f"workload factory {name!r} must accept an explicit seed"
        )


def test_mergejoin_seed_threads_through_rng():
    """An explicit seed changes the stochastic mergejoin relations,
    and the default stays pinned (committed baselines depend on it)."""
    from repro.telemetry.runner import _MERGEJOIN_SEED, _trace_mergejoin

    default = _trace_mergejoin()[0]
    pinned = _trace_mergejoin(seed=_MERGEJOIN_SEED)[0]
    reseeded = _trace_mergejoin(seed=1234)[0]
    assert default.result.duration_s == pinned.result.duration_s
    # A different relation draw almost surely changes the join size or
    # completion time; equality of both would mean the seed is ignored.
    assert (
        reseeded.result.duration_s != default.result.duration_s
        or len(reseeded.result.delivered) != len(default.result.delivered)
    )


def test_audit_covers_the_stateful_package():
    """The source audit walks ``src/repro/stateful/`` — a regression
    here (package moved, rglob narrowed) would silently exempt the
    stateful primitives from the seed discipline."""
    stateful = SRC_ROOT / "stateful"
    assert stateful.is_dir()
    audited = set(SRC_ROOT.rglob("*.py"))
    for module in stateful.glob("*.py"):
        assert module in audited, f"{module} escapes the rng audit"


def test_stateful_seed_threads_through_rng():
    """An explicit seed changes the stateful workload draws, and the
    default stays pinned (committed baselines depend on it)."""
    from repro.sim.rng import DEFAULT_SEED
    from repro.stateful.runner import run_stateful

    kwargs = dict(target="adcp", flows=64, packets=160)
    default = run_stateful("tokenbucket", **kwargs)
    pinned = run_stateful("tokenbucket", seed=DEFAULT_SEED, **kwargs)
    reseeded = run_stateful("tokenbucket", seed=1234, **kwargs)

    def draws(run):
        section = run.sections[0]
        return (
            section.series["admitted"]["mean"],
            section.series["rate_limited"]["mean"],
            section.series["scr.tokens_moved"]["mean"],
            section.result.duration_s,
        )

    assert draws(default) == draws(pinned)
    # A different key stream almost surely moves the promotions or the
    # run length; equality of all of them would mean the seed is ignored.
    assert draws(reseeded) != draws(default)
