"""Tests for clock domains (repro.sim.clock)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.clock import Clock, ClockDomain
from repro.units import GHZ


class TestClock:
    def test_period_is_reciprocal(self):
        clock = Clock(1.25 * GHZ)
        assert clock.period_s == pytest.approx(0.8e-9)

    def test_cycle_second_roundtrip(self):
        clock = Clock(1.62 * GHZ)
        assert clock.seconds_to_cycles(clock.cycles_to_seconds(100)) == pytest.approx(100)

    def test_cycle_at_boundaries(self):
        clock = Clock(1e9)
        assert clock.cycle_at(0.0) == 0
        assert clock.cycle_at(1e-9) == 1
        assert clock.cycle_at(2.5e-9) == 2

    def test_edge_after_is_strictly_later(self):
        clock = Clock(1e9)
        assert clock.edge_after(0.0) == pytest.approx(1e-9)
        assert clock.edge_after(1.4e-9) == pytest.approx(2e-9)

    def test_derived_multiplies_frequency(self):
        """Section 4's multi-clock MAT memory: n-times-faster memory clock."""
        pipeline = Clock(0.6 * GHZ, "lane")
        memory = pipeline.derived(16)
        assert memory.frequency_hz == pytest.approx(9.6 * GHZ)
        assert "x16" in memory.name

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ConfigError):
            Clock(0)
        with pytest.raises(ConfigError):
            Clock(-1.0)

    def test_invalid_multiplier_rejected(self):
        with pytest.raises(ConfigError):
            Clock(1e9).derived(0)

    @given(st.floats(min_value=1e6, max_value=1e10))
    def test_period_frequency_identity(self, freq):
        clock = Clock(freq)
        assert clock.period_s * clock.frequency_hz == pytest.approx(1.0)


class TestClockDomain:
    def test_advance_accumulates(self):
        domain = ClockDomain(Clock(1e9))
        domain.advance(3)
        domain.advance()
        assert domain.cycle == 4
        assert domain.now_s == pytest.approx(4e-9)

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigError):
            ClockDomain(Clock(1e9)).advance(-1)

    def test_ratio_between_domains(self):
        fast = ClockDomain(Clock(4e9))
        slow = ClockDomain(Clock(1e9))
        assert fast.ratio_to(slow) == pytest.approx(4.0)
        assert slow.ratio_to(fast) == pytest.approx(0.25)

    def test_integer_ratio_detection(self):
        lane = ClockDomain(Clock(0.6e9))
        memory = ClockDomain(Clock(0.6e9 * 8))
        assert memory.is_integer_ratio_to(lane)
        odd = ClockDomain(Clock(1.0e9))
        assert not odd.is_integer_ratio_to(lane)

    def test_ratio_against_bare_clock(self):
        domain = ClockDomain(Clock(2e9))
        assert domain.ratio_to(Clock(1e9)) == pytest.approx(2.0)
