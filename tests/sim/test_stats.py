"""Tests for counters, histograms, and the registry (repro.sim.stats)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.stats import Counter, Histogram, StatsRegistry


class TestCounter:
    def test_add_defaults_to_one(self):
        counter = Counter("c")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5

    def test_reset(self):
        counter = Counter("c")
        counter.add(5)
        counter.reset()
        assert counter.value == 0.0


class TestHistogram:
    def test_mean_min_max(self):
        h = Histogram("h")
        h.observe_many([1.0, 2.0, 3.0])
        assert h.mean == pytest.approx(2.0)
        assert h.minimum == 1.0
        assert h.maximum == 3.0
        assert h.count == 3
        assert h.total == pytest.approx(6.0)

    def test_percentile_interpolates(self):
        h = Histogram("h")
        h.observe_many([0.0, 10.0])
        assert h.percentile(50) == pytest.approx(5.0)
        assert h.percentile(0) == 0.0
        assert h.percentile(100) == 10.0

    def test_single_sample_percentiles(self):
        h = Histogram("h")
        h.observe(7.0)
        assert h.percentile(1) == 7.0
        assert h.percentile(99) == 7.0

    def test_empty_queries_raise(self):
        h = Histogram("h")
        with pytest.raises(SimulationError):
            _ = h.mean
        with pytest.raises(SimulationError):
            h.percentile(50)
        with pytest.raises(SimulationError):
            _ = h.minimum

    def test_percentile_out_of_range(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(SimulationError):
            h.percentile(101)
        with pytest.raises(SimulationError):
            h.percentile(-1)

    def test_observe_after_query_resorts(self):
        h = Histogram("h")
        h.observe_many([5.0, 1.0])
        assert h.minimum == 1.0
        h.observe(0.5)
        assert h.minimum == 0.5

    def test_reset_clears(self):
        h = Histogram("h")
        h.observe(1.0)
        h.reset()
        assert len(h) == 0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_percentiles_bounded_by_extremes(self, values):
        h = Histogram("h")
        h.observe_many(values)
        for p in (0, 25, 50, 75, 100):
            assert min(values) <= h.percentile(p) <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_percentile_monotone_in_p(self, values):
        h = Histogram("h")
        h.observe_many(values)
        results = [h.percentile(p) for p in (0, 10, 50, 90, 100)]
        assert results == sorted(results)

    def test_observe_rejects_nan(self):
        h = Histogram("h")
        with pytest.raises(SimulationError, match="NaN"):
            h.observe(float("nan"))
        assert len(h) == 0  # rejected sample is not recorded

    def test_percentile_rejects_nan_p(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(SimulationError):
            h.percentile(float("nan"))

    @given(
        st.lists(
            st.floats(min_value=-1e9, max_value=1e9),
            min_size=2,
            max_size=80,
        ),
        st.integers(min_value=1, max_value=99),
    )
    def test_percentile_matches_statistics_quantiles(self, values, p):
        """The documented contract: linear interpolation at rank
        p/100 * (n-1), i.e. statistics.quantiles ``method="inclusive"``."""
        import statistics

        h = Histogram("h")
        h.observe_many(values)
        expected = statistics.quantiles(values, n=100, method="inclusive")
        assert h.percentile(p) == pytest.approx(
            expected[p - 1], rel=1e-9, abs=1e-9
        )

    @given(
        st.lists(
            st.floats(min_value=-1e9, max_value=1e9),
            min_size=1,
            max_size=80,
        )
    )
    def test_percentile_endpoints_are_extremes(self, values):
        h = Histogram("h")
        h.observe_many(values)
        assert h.percentile(0) == min(values)
        assert h.percentile(100) == max(values)

    @given(st.floats(min_value=-1e9, max_value=1e9),
           st.floats(min_value=0, max_value=100))
    def test_single_sample_is_every_percentile(self, value, p):
        h = Histogram("h")
        h.observe(value)
        assert h.percentile(p) == value

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                 max_size=40),
        st.floats(min_value=0, max_value=100),
    )
    def test_percentile_of_median_duplicated(self, values, p):
        """Duplicating every sample leaves every percentile unchanged
        under the inclusive method's rank formula only at the endpoints;
        interior ranks stay within the original extremes regardless."""
        h = Histogram("h")
        h.observe_many(values + values)
        assert min(values) <= h.percentile(p) <= max(values)


class TestHistogramMerge:
    def test_merge_absorbs_samples_in_place(self):
        a = Histogram("a")
        a.observe_many([1.0, 2.0])
        b = Histogram("b")
        b.observe_many([3.0, 4.0])
        assert a.merge(b) is a
        assert a.count == 4
        assert a.total == 10.0
        assert b.count == 2  # source is untouched

    def test_merge_several_at_once(self):
        a = Histogram("a")
        parts = []
        for start in (0, 10, 20):
            h = Histogram(f"part{start}")
            h.observe_many([float(start), float(start + 1)])
            parts.append(h)
        a.merge(*parts)
        assert a.count == 6
        assert a.maximum == 21.0

    def test_merge_with_self_rejected(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(SimulationError):
            h.merge(h)
        assert h.count == 1

    def test_merged_classmethod_unions(self):
        a = Histogram("a")
        a.observe_many([1.0, 5.0])
        b = Histogram("b")
        b.observe(3.0)
        out = Histogram.merged("all", [a, b])
        assert out.name == "all"
        assert out.count == 3
        assert out.percentile(50) == 3.0

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                 max_size=20),
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                 max_size=20),
        st.floats(min_value=0, max_value=100),
    )
    def test_merge_equals_observing_union(self, left, right, p):
        """Merging per-part histograms answers exactly like one histogram
        over the union of samples — the property AttributionTable leans
        on when it aggregates across runs."""
        one = Histogram("one")
        one.observe_many(left + right)
        a = Histogram("a")
        a.observe_many(left)
        b = Histogram("b")
        b.observe_many(right)
        a.merge(b)
        assert a.count == one.count
        assert a.total == one.total
        assert a.percentile(p) == one.percentile(p)

    def test_merge_preserves_lazy_sort_correctness(self):
        a = Histogram("a")
        a.observe_many([5.0, 1.0])
        assert a.maximum == 5.0  # forces a sort
        b = Histogram("b")
        b.observe(9.0)
        a.merge(b)
        assert a.maximum == 9.0  # re-sorts after the merge


class TestStatsRegistry:
    def test_counter_is_memoized(self):
        reg = StatsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_prefix_iteration_sorted(self):
        reg = StatsRegistry()
        reg.counter("pipe1.drops")
        reg.counter("pipe0.drops")
        reg.counter("tm.drops")
        names = [c.name for c in reg.counters("pipe")]
        assert names == ["pipe0.drops", "pipe1.drops"]

    def test_value_of_untouched_counter_is_zero(self):
        assert StatsRegistry().value("nothing") == 0.0

    def test_snapshot(self):
        reg = StatsRegistry()
        reg.counter("x").add(2)
        reg.counter("y").add(3)
        assert reg.snapshot() == {"x": 2.0, "y": 3.0}

    def test_reset_all(self):
        reg = StatsRegistry()
        reg.counter("x").add(1)
        reg.histogram("h").observe(1.0)
        reg.reset()
        assert reg.value("x") == 0.0
        assert len(reg.histogram("h")) == 0

    def test_histograms_prefix_iteration(self):
        reg = StatsRegistry()
        reg.histogram("a.h1")
        reg.histogram("b.h2")
        assert [h.name for h in reg.histograms("a")] == ["a.h1"]
