"""Property tests for the event-kernel scheduling contract.

These pin the invariants every queue backend must honour (and that the
switch models rely on for reproducibility):

- FIFO tie-breaking: events at equal ``(time, priority)`` dispatch in
  schedule order — the property batched admission leans on;
- the simulated clock never runs backwards during a drain;
- ``len()`` tracks live (non-cancelled) events exactly, under lazy
  cancellation, in O(1);
- ``peek_time`` never resurrects a cancelled event.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.event import CalendarQueue, EventQueue, Simulator

BACKENDS = ["heap", "calendar"]


def _queue(backend):
    return EventQueue() if backend == "heap" else CalendarQueue()


@pytest.mark.parametrize("backend", BACKENDS)
class TestFifoTieBreaking:
    def test_equal_time_equal_priority_pops_in_push_order(self, backend):
        queue = _queue(backend)
        events = [queue.push(1.0, lambda: None, priority=3) for _ in range(50)]
        popped = []
        while (event := queue.pop()) is not None:
            popped.append(event)
        assert popped == events

    def test_priority_beats_sequence_within_a_time(self, backend):
        queue = _queue(backend)
        late_low = queue.push(2.0, lambda: None, priority=0)
        first_high = queue.push(1.0, lambda: None, priority=1)
        second_low = queue.push(1.0, lambda: None, priority=0)
        assert queue.pop() is second_low  # lower priority value first
        assert queue.pop() is first_high
        assert queue.pop() is late_low

    @settings(max_examples=100, deadline=None)
    @given(times=st.lists(st.sampled_from([0.0, 1.0, 2.5]), min_size=1,
                          max_size=64))
    def test_equal_keys_keep_schedule_order(self, backend, times):
        queue = _queue(backend)
        for time in times:
            queue.push(time, lambda: None)
        last_key = None
        while (event := queue.pop()) is not None:
            key = (event.time, event.priority, event.sequence)
            if last_key is not None:
                assert key > last_key
            last_key = key


@pytest.mark.parametrize("backend", BACKENDS)
class TestMonotonicClock:
    @settings(max_examples=100, deadline=None)
    @given(
        delays=st.lists(
            st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=40,
        )
    )
    def test_now_never_decreases(self, backend, delays):
        sim = Simulator(queue_backend=backend)
        observed = []

        def record():
            observed.append(sim.now)
            if len(observed) < len(delays) + 5:
                sim.after(0.0, record)  # same-time follow-on

        for delay in delays:
            sim.at(delay, record)
        sim.run(max_events=500)
        assert observed == sorted(observed)

    def test_until_bound_is_inclusive_and_advances_clock(self, backend):
        sim = Simulator(queue_backend=backend)
        fired = []
        sim.at(1.0, lambda: fired.append(1.0))
        sim.at(2.0, lambda: fired.append(2.0))
        sim.at(3.0, lambda: fired.append(3.0))
        sim.run(until=2.0)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
        assert sim.now == 3.0


@pytest.mark.parametrize("backend", BACKENDS)
class TestLiveCountUnderLazyCancellation:
    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_len_tracks_live_events_exactly(self, backend, data):
        queue = _queue(backend)
        events = []
        expected_live = 0
        ops = data.draw(
            st.lists(st.sampled_from(["push", "cancel", "pop"]),
                     min_size=1, max_size=80)
        )
        for step, op in enumerate(ops):
            if op == "push":
                events.append(queue.push(float(step % 7), lambda: None))
                expected_live += 1
            elif op == "cancel" and events:
                index = data.draw(
                    st.integers(0, len(events) - 1), label="cancel_index"
                )
                event = events[index]
                was_live = (
                    not event.cancelled and event._queue is not None
                )
                event.cancel()
                if was_live:
                    expected_live -= 1
            elif op == "pop":
                event = queue.pop()
                if event is not None:
                    expected_live -= 1
                    assert not event.cancelled
            assert len(queue) == expected_live
        # Drain: exactly the live events remain.
        drained = 0
        while queue.pop() is not None:
            drained += 1
        assert drained == expected_live
        assert len(queue) == 0

    def test_cancel_is_idempotent(self, backend):
        queue = _queue(backend)
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_corrupt_count(self, backend):
        queue = _queue(backend)
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped is event
        event.cancel()  # stale handle; the queue already released it
        assert len(queue) == 1
        assert queue.pop() is not None
        assert len(queue) == 0


@pytest.mark.parametrize("backend", BACKENDS)
class TestPeekNeverResurrects:
    def test_peek_skips_cancelled_head(self, backend):
        queue = _queue(backend)
        head = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        head.cancel()
        assert queue.peek_time() == 5.0
        popped = queue.pop()
        assert popped is not None and popped.time == 5.0

    def test_peek_on_fully_cancelled_queue_is_none(self, backend):
        queue = _queue(backend)
        events = [queue.push(float(i), lambda: None) for i in range(10)]
        for event in events:
            event.cancel()
        assert queue.peek_time() is None
        assert queue.pop() is None
        assert len(queue) == 0

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_peek_always_matches_next_pop(self, backend, data):
        queue = _queue(backend)
        events = []
        times = data.draw(
            st.lists(st.sampled_from([0.0, 0.5, 1.0, 7.25]),
                     min_size=1, max_size=60)
        )
        for time in times:
            events.append(queue.push(time, lambda: None))
        for index in data.draw(
            st.lists(st.integers(0, len(events) - 1), max_size=30)
        ):
            events[index].cancel()
        while True:
            peeked = queue.peek_time()
            popped = queue.pop()
            if popped is None:
                assert peeked is None
                break
            assert peeked == popped.time
            assert not popped.cancelled
