"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.adcp.config import ADCPConfig
from repro.rmt.config import RMTConfig
from repro.sim.rng import make_rng
from repro.units import GBPS


@pytest.fixture
def rng():
    """A deterministic RNG, fresh per test."""
    return make_rng(1234)


@pytest.fixture
def small_rmt_config() -> RMTConfig:
    """An 8-port, 2-pipeline RMT switch that sims fast."""
    return RMTConfig(
        num_ports=8,
        pipelines=2,
        port_speed_bps=100 * GBPS,
        min_wire_packet_bytes=84.0,
        frequency_hz=1.25e9,
    )


@pytest.fixture
def small_adcp_config() -> ADCPConfig:
    """An 8-port, 1:2-demuxed ADCP switch that sims fast."""
    return ADCPConfig(
        num_ports=8,
        port_speed_bps=100 * GBPS,
        demux_factor=2,
        central_pipelines=4,
    )
