"""Tests for TM1 scheduling disciplines (repro.adcp.scheduler)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adcp.scheduler import (
    FifoScheduler,
    KWayMergeScheduler,
    order_violations,
)
from repro.errors import ConfigError
from repro.net.traffic import make_coflow_packet


def _packet(flow: int, key: int):
    return make_coflow_packet(1, flow, seq=key, elements=[(key, key)])


class TestFifoScheduler:
    def test_arrival_order_preserved(self):
        fifo = FifoScheduler()
        for key in (5, 1, 3):
            fifo.offer(_packet(0, key))
        released = fifo.drain()
        assert [p.payload[0].key for p in released] == [5, 1, 3]
        assert fifo.released == 3
        assert fifo.pending() == 0

    def test_interleaved_sorted_flows_violate_order(self):
        """The classic-TM baseline: two sorted flows interleaved FIFO are
        not globally sorted."""
        fifo = FifoScheduler()
        for key in (0, 10, 1, 11, 2, 12):
            fifo.offer(_packet(key % 2, key))
        released = fifo.drain()
        assert order_violations(released) > 0


class TestKWayMerge:
    def test_merges_two_sorted_flows(self):
        merge = KWayMergeScheduler(flows=[0, 1])
        released = []
        # Flow 0: 0, 2, 4 — flow 1: 1, 3, 5, interleaved arrival.
        for flow, key in [(0, 0), (1, 1), (0, 2), (1, 3), (0, 4), (1, 5)]:
            released.extend(merge.offer(_packet(flow, key)))
        released.extend(merge.finish_flow(0))
        released.extend(merge.finish_flow(1))
        keys = [p.payload[0].key for p in released]
        assert keys == [0, 1, 2, 3, 4, 5]
        assert order_violations(released) == 0
        assert merge.is_drained

    def test_blocks_on_empty_unfinished_flow(self):
        """A flow with no buffered packet gates the merge — the streaming
        watermark condition."""
        merge = KWayMergeScheduler(flows=[0, 1])
        assert merge.offer(_packet(0, 5)) == []  # flow 1 unknown
        released = merge.offer(_packet(1, 7))
        assert [p.payload[0].key for p in released] == [5]

    def test_finish_unblocks(self):
        merge = KWayMergeScheduler(flows=[0, 1])
        merge.offer(_packet(0, 5))
        released = merge.finish_flow(1)
        assert [p.payload[0].key for p in released] == [5]

    def test_unsorted_flow_rejected(self):
        """Section 3.1: TM1 'could keep a sort order while it merges flows
        that are themselves sorted' — it does not sort."""
        merge = KWayMergeScheduler(flows=[0])
        merge.offer(_packet(0, 5))
        with pytest.raises(ConfigError):
            merge.offer(_packet(0, 3))

    def test_unregistered_flow_rejected(self):
        merge = KWayMergeScheduler(flows=[0])
        with pytest.raises(ConfigError):
            merge.offer(_packet(9, 1))

    def test_offer_after_finish_rejected(self):
        merge = KWayMergeScheduler(flows=[0])
        merge.finish_flow(0)
        with pytest.raises(ConfigError):
            merge.offer(_packet(0, 1))

    def test_duplicate_flows_rejected(self):
        with pytest.raises(ConfigError):
            KWayMergeScheduler(flows=[0, 0])

    def test_max_buffered_tracked(self):
        merge = KWayMergeScheduler(flows=[0, 1])
        merge.offer(_packet(0, 1))
        merge.offer(_packet(0, 2))
        assert merge.max_buffered == 2

    def test_equal_keys_across_flows_release_stably(self):
        merge = KWayMergeScheduler(flows=[0, 1])
        merge.offer(_packet(0, 5))
        released = merge.offer(_packet(1, 5))
        released += merge.finish_flow(0)
        released += merge.finish_flow(1)
        assert len(released) == 2
        assert order_violations(released) == 0

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20),
            min_size=2,
            max_size=5,
        )
    )
    def test_merge_of_sorted_flows_is_globally_sorted(self, flows_keys):
        """Property: merging any set of sorted flows, under any arrival
        interleaving, yields a globally sorted release order."""
        flows_keys = [sorted(keys) for keys in flows_keys]
        merge = KWayMergeScheduler(flows=list(range(len(flows_keys))))
        released = []
        cursors = [0] * len(flows_keys)
        # Round-robin arrival interleaving.
        remaining = sum(len(k) for k in flows_keys)
        flow = 0
        while remaining:
            if cursors[flow] < len(flows_keys[flow]):
                key = flows_keys[flow][cursors[flow]]
                released.extend(merge.offer(_packet(flow, key)))
                cursors[flow] += 1
                remaining -= 1
            flow = (flow + 1) % len(flows_keys)
        for flow in range(len(flows_keys)):
            released.extend(merge.finish_flow(flow))
        keys = [p.payload[0].key for p in released]
        assert keys == sorted(
            key for keys in flows_keys for key in keys
        )


class TestOrderViolations:
    def test_sorted_stream_has_none(self):
        packets = [_packet(0, k) for k in range(5)]
        assert order_violations(packets) == 0

    def test_counts_adjacent_inversions(self):
        packets = [_packet(0, k) for k in (3, 1, 2, 0)]
        assert order_violations(packets) == 2
