"""Tests for TM1 (repro.adcp.traffic_manager) and its merge front-end."""

from __future__ import annotations

import pytest

from repro.adcp.config import ADCPConfig
from repro.adcp.switch import ADCPSwitch
from repro.adcp.traffic_manager import ApplicationTrafficManager
from repro.coflow.placement import RangePlacement
from repro.errors import ConfigError
from repro.net.headers import OP_FLUSH
from repro.net.traffic import DeterministicSource, make_coflow_packet
from repro.sim.component import Component
from repro.units import GBPS


def _tm(**kwargs) -> ApplicationTrafficManager:
    defaults = dict(
        name="tm1",
        parent=Component("switch"),
        central_pipelines=4,
        key_fn=lambda p: p.payload[0].key,
    )
    defaults.update(kwargs)
    return ApplicationTrafficManager(**defaults)  # type: ignore[arg-type]


def _packet(key: int, flow: int = 0, seq: int = 0, opcode: int = 0):
    packet = make_coflow_packet(1, flow, seq, [(key, key)], opcode=opcode)
    packet.meta.ingress_port = 0
    return packet


class TestApplicationTm:
    def test_routes_by_key_not_port(self):
        tm = _tm()
        seen = set()
        for key in range(64):
            admitted = tm.admit(_packet(key), 0.0)
            assert admitted is not None
            seen.add(admitted[0])
            tm.release(_packet(key))
        assert len(seen) == 4  # keys spread over all central pipelines

    def test_range_policy(self):
        tm = _tm(policy=RangePlacement([10, 20, 30]))
        assert tm.admit(_packet(5), 0.0)[0] == 0
        assert tm.admit(_packet(15), 0.0)[0] == 1
        assert tm.admit(_packet(25), 0.0)[0] == 2
        assert tm.admit(_packet(99), 0.0)[0] == 3

    def test_policy_partition_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            _tm(policy=RangePlacement([10]))  # 2 partitions vs 4 pipelines

    def test_partition_histogram(self):
        tm = _tm(policy=RangePlacement([10, 20, 30]))
        for key in (1, 2, 15, 99):
            tm.admit(_packet(key), 0.0)
        assert tm.partition_histogram() == [2, 1, 0, 1]

    def test_zero_pipelines_rejected(self):
        with pytest.raises(ConfigError):
            _tm(central_pipelines=0)


class TestMergeFrontEnd:
    def _switch(self, config=None):
        config = config or ADCPConfig(
            num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
            central_pipelines=4,
        )
        return ADCPSwitch(config, ordered_flows=[0, 1])

    def test_ordered_delivery_across_flows(self):
        """Two sorted flows interleave on the wire; the switch's central
        pipelines observe them in globally sorted key order."""
        switch = self._switch()
        events = []
        time = 0.0
        # Interleave flow 0 (even keys) and flow 1 (odd keys).
        for i in range(20):
            flow = i % 2
            key = i  # global arrival already alternates 0,1,2,...
            packet = _packet(key, flow=flow, seq=i)
            packet.meta.egress_port = 7
            events.append((time, packet))
            time += 1e-8
        for flow in (0, 1):
            flush = _packet(0, flow=flow, seq=99, opcode=OP_FLUSH)
            events.append((time, flush))
            time += 1e-8
        result = switch.run(events)
        assert result.delivered_count == 20
        # Release order through TM1 is key-sorted; per central pipeline,
        # arrival times must be key-monotone.
        per_pipe: dict[int, list[tuple[float, int]]] = {}
        for packet in result.delivered:
            per_pipe.setdefault(packet.meta.central_pipeline, []).append(
                (packet.meta.arrival_time, packet.payload[0].key)
            )
        # (the merged global order is sorted; verify nothing overtook)
        keys_in_release_order = [
            key for _, key in sorted(
                ((p.meta.arrival_time, p.payload[0].key)
                 for p in result.delivered),
            )
        ]
        assert keys_in_release_order == sorted(keys_in_release_order)

    def test_blocked_merge_holds_packets(self):
        """With one flow silent, the other's packets wait in TM1's merge
        buffer and never reach the central area."""
        switch = self._switch()
        events = []
        for i in range(5):
            packet = _packet(i, flow=0, seq=i)
            packet.meta.egress_port = 7
            events.append((i * 1e-8, packet))
        result = switch.run(events)
        assert result.delivered_count == 0
        assert switch._merge is not None and switch._merge.pending() == 5

    def test_flush_unblocks(self):
        switch = self._switch()
        events = []
        for i in range(5):
            packet = _packet(i, flow=0, seq=i)
            packet.meta.egress_port = 7
            events.append((i * 1e-8, packet))
        events.append((1e-6, _packet(0, flow=1, seq=0, opcode=OP_FLUSH)))
        events.append((2e-6, _packet(0, flow=0, seq=9, opcode=OP_FLUSH)))
        result = switch.run(events)
        assert result.delivered_count == 5

    def test_unregistered_flows_bypass_merge(self):
        switch = self._switch()
        packet = _packet(3, flow=77)
        packet.meta.egress_port = 2
        result = switch.run([(0.0, packet)])
        assert result.delivered_count == 1

    def test_unsorted_registered_flow_rejected(self):
        switch = self._switch()
        a = _packet(10, flow=0, seq=0)
        a.meta.egress_port = 1
        b = _packet(5, flow=0, seq=1)
        b.meta.egress_port = 1
        with pytest.raises(ConfigError):
            switch.run([(0.0, a), (1e-8, b)])
