"""Tests for ADCP configuration (repro.adcp.config)."""

from __future__ import annotations

import pytest

from repro.adcp.config import ADCPConfig, table3_config
from repro.errors import ConfigError
from repro.units import GBPS, GHZ


class TestGeometry:
    def test_lane_counts(self):
        config = ADCPConfig(num_ports=16, demux_factor=2)
        assert config.ingress_pipelines == 32
        assert config.egress_pipelines == 32

    def test_lane_indexing_roundtrip(self):
        config = ADCPConfig(num_ports=8, demux_factor=4)
        for port in range(8):
            for lane in range(4):
                global_lane = config.lane_of(port, lane)
                assert config.port_of_lane(global_lane) == port

    def test_lane_bounds_checked(self):
        config = ADCPConfig(num_ports=8, demux_factor=2)
        with pytest.raises(ConfigError):
            config.lane_of(8, 0)
        with pytest.raises(ConfigError):
            config.lane_of(0, 2)
        with pytest.raises(ConfigError):
            config.port_of_lane(16)


class TestClocks:
    def test_table3_800g_lane_frequency(self):
        """Table 3 row 2: 800G demuxed 1:2 at 84 B -> ~0.6 GHz lanes."""
        config = table3_config(800)
        assert config.lane_frequency_hz == pytest.approx(0.60 * GHZ, rel=0.02)

    def test_table3_1600g_lane_frequency(self):
        """Table 3 row 4: 1.6T demuxed 1:2 -> ~1.19 GHz lanes."""
        config = table3_config(1600)
        assert config.lane_frequency_hz == pytest.approx(1.19 * GHZ, rel=0.02)

    def test_lane_frequency_scales_inversely_with_demux(self):
        base = ADCPConfig(num_ports=4, demux_factor=1)
        half = ADCPConfig(num_ports=4, demux_factor=2)
        assert half.lane_frequency_hz == pytest.approx(base.lane_frequency_hz / 2)

    def test_central_clock_covers_aggregate(self):
        """The central bank must absorb the whole switch's packet rate."""
        config = ADCPConfig(num_ports=8, central_pipelines=4)
        aggregate = config.port_packet_rate_pps * 8
        assert config.central_clock_hz * 4 >= aggregate

    def test_central_clock_override(self):
        config = ADCPConfig(central_frequency_hz=2 * GHZ)
        assert config.central_clock_hz == 2 * GHZ


class TestValidation:
    def test_array_width_bounded_by_maus(self):
        with pytest.raises(ConfigError):
            ADCPConfig(array_width=17, maus_per_stage=16)

    def test_demux_factor_positive(self):
        with pytest.raises(ConfigError):
            ADCPConfig(demux_factor=0)

    def test_min_packet_floor(self):
        with pytest.raises(ConfigError):
            ADCPConfig(min_wire_packet_bytes=50)

    def test_margin_at_least_one(self):
        with pytest.raises(ConfigError):
            ADCPConfig(frequency_margin=0.9)

    def test_throughput(self):
        config = ADCPConfig(num_ports=16, port_speed_bps=800 * GBPS)
        assert config.throughput_bps == pytest.approx(12.8e12)
