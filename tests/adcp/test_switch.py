"""Behavioral tests for the ADCP switch (repro.adcp.switch).

These encode the section 3 claims: any-port reachability from the global
area, array-wide stateful processing, and demuxed lane clocks.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.adcp.config import ADCPConfig
from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp
from repro.arch.app import SwitchApp
from repro.arch.decision import Decision
from repro.errors import ConfigError
from repro.net.traffic import DeterministicSource, make_coflow_packet
from repro.units import GBPS


def _forwarding_run(config, n=40, ingress=0, egress=7):
    switch = ADCPSwitch(config)
    packets = []
    for i in range(n):
        packet = make_coflow_packet(1, 0, i, [(i, i)])
        packet.meta.egress_port = egress
        packets.append(packet)
    source = DeterministicSource(ingress, config.port_speed_bps, packets)
    return switch, switch.run(source.packets())


class TestForwarding:
    def test_delivery(self, small_adcp_config):
        switch, result = _forwarding_run(small_adcp_config)
        assert result.delivered_count == 40
        assert not result.dropped

    def test_lanes_round_robin(self, small_adcp_config):
        switch, result = _forwarding_run(small_adcp_config, n=10)
        lanes = {p.meta.lane for p in result.delivered}
        assert lanes == {0, 1}  # both lanes of port 0

    def test_all_packets_traverse_central(self, small_adcp_config):
        switch, result = _forwarding_run(small_adcp_config, n=10)
        assert all(p.meta.central_pipeline is not None for p in result.delivered)

    def test_tm1_places_by_key_hash(self, small_adcp_config):
        switch, result = _forwarding_run(small_adcp_config, n=100)
        histogram = switch.tm1.partition_histogram()
        assert sum(histogram) == 100
        assert all(count > 0 for count in histogram)

    def test_multicast_via_tm2(self, small_adcp_config):
        switch = ADCPSwitch(small_adcp_config)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        packet.meta.ingress_port = 0
        packet.meta.egress_ports = (2, 5, 7)
        result = switch.run([(0.0, packet)])
        assert sorted(p.meta.egress_port for p in result.delivered) == [2, 5, 7]
        assert result.recirculated_packets == 0


class TestGlobalArea:
    def test_aggregation_reaches_every_port_without_recirculation(
        self, small_adcp_config
    ):
        """Figure 5: results placed by hash can still exit any port."""
        app = ParameterServerApp([0, 1, 4, 5], 64, elements_per_packet=16)
        switch = ADCPSwitch(small_adcp_config, app)
        result = switch.run(app.workload(small_adcp_config.port_speed_bps))
        assert app.collect_results(result.delivered) == app.expected_result()
        assert result.recirculated_packets == 0
        delivered_ports = {p.meta.egress_port for p in result.delivered}
        assert delivered_ports == {0, 1, 4, 5}

    def test_state_partitioned_across_central_pipelines(self, small_adcp_config):
        app = ParameterServerApp([0, 1, 4, 5], 256, elements_per_packet=16)
        switch = ADCPSwitch(small_adcp_config, app)
        switch.run(app.workload(small_adcp_config.port_speed_bps))
        with_state = [c for c in switch.central if "agg_acc" in c.registers]
        assert len(with_state) >= 2  # spread, not pinned

    def test_ingress_and_egress_hold_no_aggregation_state(self, small_adcp_config):
        app = ParameterServerApp([0, 1, 4, 5], 64, elements_per_packet=16)
        switch = ADCPSwitch(small_adcp_config, app)
        switch.run(app.workload(small_adcp_config.port_speed_bps))
        assert not any("agg_acc" in p.registers for p in switch.ingress)
        assert not any("agg_acc" in p.registers for p in switch.egress)


class TestArraySupport:
    def test_wide_app_accepted_up_to_array_width(self, small_adcp_config):
        ParameterServerApp([0, 1], 32, elements_per_packet=16)
        ADCPSwitch(
            small_adcp_config,
            ParameterServerApp([0, 1], 32, elements_per_packet=16),
        )

    def test_wider_than_array_rejected(self, small_adcp_config):
        config = dataclasses.replace(small_adcp_config, array_width=8)
        app = ParameterServerApp([0, 1], 32, elements_per_packet=16)
        with pytest.raises(ConfigError):
            ADCPSwitch(config, app)

    def test_wide_packets_need_fewer_packets_for_same_elements(
        self, small_adcp_config
    ):
        """Same vector, 16x fewer packets — the key-rate argument at the
        packet level."""
        wide = ParameterServerApp([0, 1], 256, elements_per_packet=16)
        scalar = ParameterServerApp([0, 1], 256, elements_per_packet=1)
        wide_switch = ADCPSwitch(small_adcp_config, wide)
        wide_result = wide_switch.run(
            wide.workload(small_adcp_config.port_speed_bps)
        )
        scalar_switch = ADCPSwitch(small_adcp_config, scalar)
        scalar_result = scalar_switch.run(
            scalar.workload(small_adcp_config.port_speed_bps)
        )
        assert wide.collect_results(wide_result.delivered) == wide.expected_result()
        assert scalar.collect_results(
            scalar_result.delivered
        ) == scalar.expected_result()
        assert scalar_result.consumed >= 8 * wide_result.consumed
        assert scalar_result.duration_s > 3 * wide_result.duration_s


class TestProgrammingModelGuards:
    def test_recirculate_verdict_rejected(self, small_adcp_config):
        class BadApp(SwitchApp):
            def __init__(self):
                super().__init__("bad")

            def ingress(self, ctx, packet, phv):
                return Decision.recirculate()

        switch = ADCPSwitch(small_adcp_config, BadApp())
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        packet.meta.ingress_port = 0
        packet.meta.egress_port = 1
        with pytest.raises(ConfigError):
            switch.run([(0.0, packet)])

    def test_egress_emission_rejected(self, small_adcp_config):
        class BadApp(SwitchApp):
            def __init__(self):
                super().__init__("bad")

            def egress(self, ctx, packet, phv):
                extra = make_coflow_packet(1, 0, 0, [(1, 1)])
                extra.meta.egress_port = 0
                return Decision.forward(extra)

        switch = ADCPSwitch(small_adcp_config, BadApp())
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        packet.meta.ingress_port = 0
        packet.meta.egress_port = 1
        with pytest.raises(ConfigError):
            switch.run([(0.0, packet)])

    def test_no_route_drop(self, small_adcp_config):
        switch = ADCPSwitch(small_adcp_config)
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        packet.meta.ingress_port = 0
        result = switch.run([(0.0, packet)])
        assert result.dropped[0].meta.drop_reason == "no_route"
