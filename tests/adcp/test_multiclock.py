"""Tests for the array MAT-memory designs (repro.adcp.multiclock)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adcp.multiclock import (
    MAX_SRAM_FREQUENCY_HZ,
    BankedMatMemory,
    MultiClockMatMemory,
)
from repro.errors import ConfigError
from repro.sim.rng import make_rng
from repro.units import GHZ


class TestMultiClock:
    def test_memory_clock_is_width_times_pipeline(self):
        design = MultiClockMatMemory(0.6 * GHZ, 4)
        assert design.memory_frequency_hz == pytest.approx(2.4 * GHZ)

    def test_feasible_at_low_lane_clocks(self):
        """The paper's synergy: demuxed lanes run slow, leaving clock
        headroom for the n-times-faster memory."""
        lane = MultiClockMatMemory(0.6 * GHZ, 4)
        assert lane.is_feasible

    def test_infeasible_at_width_16_on_slow_lane(self):
        design = MultiClockMatMemory(0.6 * GHZ, 16)  # 9.6 GHz memory
        assert not design.is_feasible
        with pytest.raises(ConfigError):
            design.lookups_per_pipeline_cycle([1] * 16)

    def test_max_feasible_width(self):
        design = MultiClockMatMemory(0.6 * GHZ, 1)
        assert design.max_feasible_width == int(MAX_SRAM_FREQUENCY_HZ / (0.6 * GHZ))

    def test_full_width_batch_retires_in_one_cycle(self):
        design = MultiClockMatMemory(0.6 * GHZ, 4)
        assert design.lookups_per_pipeline_cycle([1, 2, 3, 4]) == pytest.approx(4.0)

    def test_oversized_batch_takes_extra_cycles(self):
        design = MultiClockMatMemory(0.6 * GHZ, 4)
        assert design.lookups_per_pipeline_cycle([1] * 8) == pytest.approx(4.0)
        assert design.lookups_per_pipeline_cycle([1] * 6) == pytest.approx(3.0)

    def test_area_overhead_is_fixed(self):
        assert MultiClockMatMemory(1e9, 4).area_factor() == pytest.approx(1.15)

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigError):
            MultiClockMatMemory(1e9, 4).lookups_per_pipeline_cycle([])

    def test_validation(self):
        with pytest.raises(ConfigError):
            MultiClockMatMemory(0, 4)
        with pytest.raises(ConfigError):
            MultiClockMatMemory(1e9, 0)


class TestBanked:
    def test_always_feasible(self):
        assert BankedMatMemory(1.62 * GHZ, 16).is_feasible
        assert BankedMatMemory(1.62 * GHZ, 16).memory_frequency_hz == 1.62 * GHZ

    def test_conflict_free_batch_single_cycle(self):
        design = BankedMatMemory(1e9, 4)
        # Find 4 keys in distinct banks.
        keys, banks = [], set()
        key = 0
        while len(keys) < 4:
            bank = design.bank_of(key)
            if bank not in banks:
                banks.add(bank)
                keys.append(key)
            key += 1
        assert design.batch_cycles(keys) == 1
        assert design.lookups_per_pipeline_cycle(keys) == pytest.approx(4.0)

    def test_full_conflict_serializes(self):
        design = BankedMatMemory(1e9, 4)
        key = 17
        assert design.batch_cycles([key] * 4) == 4
        assert design.lookups_per_pipeline_cycle([key] * 4) == pytest.approx(1.0)

    def test_expected_cycles_exceed_one_for_random_batches(self):
        """Birthday effect: random keys collide, so banked throughput is
        strictly below the multi-clock design's."""
        design = BankedMatMemory(1e9, 8)
        mean = design.expected_batch_cycles(8, trials=300, rng=make_rng(1))
        assert 1.5 < mean < 4.0

    def test_area_grows_with_banks(self):
        assert BankedMatMemory(1e9, 16).area_factor() > BankedMatMemory(1e9, 4).area_factor()

    def test_validation(self):
        design = BankedMatMemory(1e9, 4)
        with pytest.raises(ConfigError):
            design.batch_cycles([])
        with pytest.raises(ConfigError):
            design.expected_batch_cycles(0, 10, make_rng())
        with pytest.raises(ConfigError):
            design.expected_batch_cycles(4, 0, make_rng())

    @given(st.lists(st.integers(min_value=0, max_value=2**31), min_size=1, max_size=32))
    def test_batch_cycles_bounds(self, keys):
        """Cycles are between ceil(n/width) and n."""
        design = BankedMatMemory(1e9, 8)
        cycles = design.batch_cycles(keys)
        assert (len(keys) + 7) // 8 <= cycles <= len(keys)
