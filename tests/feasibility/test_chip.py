"""Tests for full-chip composition (repro.feasibility.chip)."""

from __future__ import annotations

import pytest

from repro.adcp.config import ADCPConfig
from repro.errors import ConfigError
from repro.feasibility.chip import ChipModel
from repro.rmt.config import RMTConfig
from repro.units import GBPS, GHZ


def _rmt_128t() -> RMTConfig:
    """A 12.8 Tbps RMT design (Table 2 row 3 class)."""
    return RMTConfig(
        num_ports=32,
        port_speed_bps=400 * GBPS,
        pipelines=4,
        min_wire_packet_bytes=247.0,
        frequency_hz=1.62 * GHZ,
    )


def _adcp_128t() -> ADCPConfig:
    """An equal-throughput ADCP design with 1:2 demux and 84 B packets."""
    return ADCPConfig(
        num_ports=32,
        port_speed_bps=400 * GBPS,
        demux_factor=2,
        central_pipelines=8,
        array_width=8,
    )


class TestRmtChip:
    def test_block_inventory(self):
        budget = ChipModel().rmt_chip(_rmt_128t())
        names = {b.name for b in budget.blocks}
        assert "ingress0" in names and "egress3" in names and "tm" in names
        assert len(budget.blocks) == 2 * 4 + 1

    def test_plausible_die_size(self):
        """Order-of-magnitude calibration: a 12.8T switch die lands in the
        hundreds of mm^2, not tens or thousands."""
        budget = ChipModel().rmt_chip(_rmt_128t())
        assert 100 < budget.total_mm2 < 1500

    def test_plausible_power(self):
        budget = ChipModel().rmt_chip(_rmt_128t())
        assert 10 < budget.total_w < 600

    def test_block_lookup(self):
        budget = ChipModel().rmt_chip(_rmt_128t())
        assert budget.block("tm").logic_mm2 > 0
        with pytest.raises(ConfigError):
            budget.block("ghost")


class TestAdcpChip:
    def test_block_inventory(self):
        config = _adcp_128t()
        budget = ChipModel().adcp_chip(config)
        names = {b.name for b in budget.blocks}
        assert "tm1" in names and "tm2" in names
        assert f"central{config.central_pipelines - 1}" in names
        assert f"central0_xbar" in names
        lanes = config.ingress_pipelines
        assert f"ingress{lanes - 1}" in names

    def test_more_pipelines_than_rmt(self):
        rmt = ChipModel().rmt_chip(_rmt_128t())
        adcp = ChipModel().adcp_chip(_adcp_128t())
        assert len(adcp.blocks) > len(rmt.blocks)


class TestComparison:
    def test_equal_throughput_enforced(self):
        with pytest.raises(ConfigError):
            ChipModel().compare(
                _rmt_128t(), ADCPConfig(num_ports=8, port_speed_bps=400 * GBPS)
            )

    def test_adcp_pays_area_but_saves_dynamic_power_per_mm2(self):
        """The §4 trade in one number pair: the ADCP has more pipeline
        instances (more area), but its dynamic power per mm^2 of logic is
        far lower thanks to the slower clocks."""
        model = ChipModel()
        rmt_budget = model.rmt_chip(_rmt_128t())
        adcp_budget = model.adcp_chip(_adcp_128t())
        assert adcp_budget.total_mm2 > rmt_budget.total_mm2
        rmt_density = rmt_budget.dynamic_w / rmt_budget.logic_mm2
        adcp_density = adcp_budget.dynamic_w / adcp_budget.logic_mm2
        assert adcp_density < rmt_density / 2

    def test_compare_returns_both(self):
        results = ChipModel().compare(_rmt_128t(), _adcp_128t())
        assert set(results) == {"rmt", "adcp"}
        for area, dynamic, total in results.values():
            assert area > 0 and dynamic > 0 and total > dynamic

    def test_memory_capacity_held_constant_per_stage(self):
        """The comparison is fair: per-stage memory is identical, so total
        memory scales only with pipeline count."""
        model = ChipModel()
        rmt_budget = model.rmt_chip(_rmt_128t())
        per_pipe_mem = rmt_budget.block("ingress0").memory_mm2
        adcp_budget = model.adcp_chip(_adcp_128t())
        assert adcp_budget.block("ingress0").memory_mm2 == pytest.approx(per_pipe_mem)
