"""Tests for grid floorplans (repro.feasibility.floorplan)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, FeasibilityError
from repro.feasibility.floorplan import (
    Block,
    Floorplan,
    adcp_floorplan,
    interleaved_tm_floorplan,
    monolithic_tm_floorplan,
)


class TestBlock:
    def test_center_and_cells(self):
        block = Block("b", 0, 0, 4, 2)
        assert block.center == (2.0, 1.0)
        assert block.cells == 8

    def test_overlap_detection(self):
        a = Block("a", 0, 0, 4, 4)
        assert a.overlaps(Block("b", 2, 2, 6, 6))
        assert not a.overlaps(Block("c", 4, 0, 8, 4))  # edge-adjacent

    def test_degenerate_rejected(self):
        with pytest.raises(ConfigError):
            Block("b", 0, 0, 0, 4)


class TestFloorplan:
    def test_place_and_lookup(self):
        plan = Floorplan(10, 10)
        plan.place(Block("a", 0, 0, 2, 2))
        assert plan.block("a").cells == 4
        assert "a" in plan

    def test_overlap_rejected(self):
        plan = Floorplan(10, 10)
        plan.place(Block("a", 0, 0, 4, 4))
        with pytest.raises(FeasibilityError):
            plan.place(Block("b", 3, 3, 6, 6))

    def test_out_of_grid_rejected(self):
        plan = Floorplan(4, 4)
        with pytest.raises(FeasibilityError):
            plan.place(Block("a", 0, 0, 5, 2))

    def test_duplicate_name_rejected(self):
        plan = Floorplan(10, 10)
        plan.place(Block("a", 0, 0, 1, 1))
        with pytest.raises(ConfigError):
            plan.place(Block("a", 2, 2, 3, 3))

    def test_unknown_block(self):
        with pytest.raises(ConfigError):
            Floorplan(4, 4).block("ghost")

    def test_utilization(self):
        plan = Floorplan(10, 10)
        plan.place(Block("a", 0, 0, 5, 10))
        assert plan.utilization == pytest.approx(0.5)


class TestLayoutFamilies:
    @pytest.mark.parametrize("pipelines", [1, 2, 4, 8])
    def test_monolithic_has_all_blocks(self, pipelines):
        plan = monolithic_tm_floorplan(pipelines)
        for i in range(pipelines):
            assert f"ingress{i}" in plan
            assert f"egress{i}" in plan
        assert "tm" in plan

    @pytest.mark.parametrize("pipelines", [1, 2, 4, 8])
    def test_interleaved_has_slice_per_pipeline(self, pipelines):
        plan = interleaved_tm_floorplan(pipelines)
        for i in range(pipelines):
            assert f"tm_slice{i}" in plan

    def test_interleaved_slices_are_local(self):
        """Each TM slice sits at its pipeline's latitude — the spread the
        paper prescribes."""
        plan = interleaved_tm_floorplan(4)
        for i in range(4):
            pipe_y = plan.block(f"ingress{i}").center[1]
            slice_y = plan.block(f"tm_slice{i}").center[1]
            assert abs(pipe_y - slice_y) < 2.0

    def test_monolithic_tm_is_far_from_edge_pipelines(self):
        plan = monolithic_tm_floorplan(8)
        tm_y = plan.block("tm").center[1]
        first = plan.block("ingress0").center[1]
        assert abs(tm_y - first) > 10

    def test_adcp_floorplan_structure(self):
        plan = adcp_floorplan(lanes=4, central=2)
        for i in range(4):
            assert f"ingress{i}" in plan
            assert f"egress{i}" in plan
            assert f"tm1_slice{i}" in plan
            assert f"tm2_slice{i}" in plan
        for i in range(2):
            assert f"central{i}" in plan

    def test_validation(self):
        with pytest.raises(ConfigError):
            monolithic_tm_floorplan(0)
        with pytest.raises(ConfigError):
            adcp_floorplan(0, 1)
