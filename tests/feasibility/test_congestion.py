"""Tests for routing congestion estimation (repro.feasibility.congestion).

The headline assertion is the section 4 claim: a monolithic shared TM is a
congestion hotspot, and interleaving it with the pipelines relieves the
peak.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.feasibility.congestion import (
    Net,
    RoutingEstimator,
    tm_netlist_interleaved,
    tm_netlist_monolithic,
)
from repro.feasibility.floorplan import (
    Block,
    Floorplan,
    interleaved_tm_floorplan,
    monolithic_tm_floorplan,
)


def _two_block_plan() -> Floorplan:
    plan = Floorplan(10, 3)
    plan.place(Block("a", 0, 1, 2, 2))
    plan.place(Block("b", 8, 1, 10, 2))
    return plan


class TestRoutingEstimator:
    def test_straight_net_demand(self):
        plan = _two_block_plan()
        report = RoutingEstimator(plan, capacity_per_cell=10).estimate(
            [Net("a", "b", 10)]
        )
        # Both L-shapes coincide on a straight horizontal run: the cells
        # between the blocks carry the full 10 wires.
        assert report.max_congestion == pytest.approx(1.0)
        assert report.congestion[1, 5] == pytest.approx(1.0)

    def test_wirelength_positive_and_scales(self):
        plan = _two_block_plan()
        thin = RoutingEstimator(plan).estimate([Net("a", "b", 8)])
        thick = RoutingEstimator(plan).estimate([Net("a", "b", 16)])
        assert thick.total_wirelength == pytest.approx(2 * thin.total_wirelength)

    def test_overflow_detection(self):
        plan = _two_block_plan()
        report = RoutingEstimator(plan, capacity_per_cell=4).estimate(
            [Net("a", "b", 8)]
        )
        assert report.overflowed_cells > 0
        assert report.max_congestion > 1.0

    def test_hotspot_location(self):
        plan = _two_block_plan()
        report = RoutingEstimator(plan).estimate([Net("a", "b", 8)])
        x, y = report.hotspot
        assert y == 1  # on the routing row

    def test_percentile_bounds(self):
        plan = _two_block_plan()
        report = RoutingEstimator(plan).estimate([Net("a", "b", 8)])
        assert report.percentile(100) == report.max_congestion
        assert report.percentile(0) <= report.mean_congestion
        with pytest.raises(ConfigError):
            report.percentile(101)

    def test_empty_netlist_rejected(self):
        with pytest.raises(ConfigError):
            RoutingEstimator(_two_block_plan()).estimate([])

    def test_zero_wire_net_rejected(self):
        with pytest.raises(ConfigError):
            Net("a", "b", 0)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            RoutingEstimator(_two_block_plan(), capacity_per_cell=0)


class TestSection4Claim:
    @pytest.mark.parametrize("pipelines", [4, 8])
    def test_interleaving_relieves_peak_congestion(self, pipelines):
        """Interleaved TM slices cut the worst g-cell congestion versus a
        monolithic TM under the same per-pipeline wire demand."""
        wires = 512
        mono = RoutingEstimator(monolithic_tm_floorplan(pipelines)).estimate(
            tm_netlist_monolithic(pipelines, wires)
        )
        inter = RoutingEstimator(interleaved_tm_floorplan(pipelines)).estimate(
            tm_netlist_interleaved(pipelines, wires)
        )
        assert inter.max_congestion < mono.max_congestion

    def test_monolithic_peak_grows_with_pipeline_count(self):
        """More pipelines converging on one TM make it strictly worse —
        why the problem bites harder as TMs serve more pipelines."""
        wires = 512
        peak4 = RoutingEstimator(monolithic_tm_floorplan(4)).estimate(
            tm_netlist_monolithic(4, wires)
        ).max_congestion
        peak8 = RoutingEstimator(monolithic_tm_floorplan(8)).estimate(
            tm_netlist_monolithic(8, wires)
        ).max_congestion
        assert peak8 > peak4

    def test_interleaved_peak_stays_flat(self):
        wires = 512
        peak4 = RoutingEstimator(interleaved_tm_floorplan(4)).estimate(
            tm_netlist_interleaved(4, wires)
        ).max_congestion
        peak8 = RoutingEstimator(interleaved_tm_floorplan(8)).estimate(
            tm_netlist_interleaved(8, wires)
        ).max_congestion
        assert peak8 <= peak4 * 1.5

    def test_netlist_validation(self):
        with pytest.raises(ConfigError):
            tm_netlist_monolithic(0, 8)
        with pytest.raises(ConfigError):
            tm_netlist_interleaved(0, 8)
