"""Tests for the power model (repro.feasibility.power)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.feasibility.power import PowerModel
from repro.units import GHZ


class TestVoltage:
    def test_reference_point(self):
        model = PowerModel()
        assert model.voltage(model.f_ref_hz) == pytest.approx(model.v_ref)

    def test_floor_at_v_min(self):
        model = PowerModel()
        assert model.voltage(1e6) >= model.v_min

    def test_monotone_in_frequency(self):
        model = PowerModel()
        assert model.voltage(2 * GHZ) > model.voltage(1 * GHZ)

    def test_invalid_frequency(self):
        with pytest.raises(ConfigError):
            PowerModel().voltage(0)

    def test_invalid_curve(self):
        with pytest.raises(ConfigError):
            PowerModel(v_min=0)
        with pytest.raises(ConfigError):
            PowerModel(v_min=1.0, v_ref=0.5)


class TestDynamicPower:
    def test_superlinear_in_frequency(self):
        """Halving the clock cuts dynamic power by more than half (DVFS):
        the quantitative basis of section 4's power claim."""
        model = PowerModel()
        full = model.dynamic_power_w(100.0, 1.62 * GHZ)
        half = model.dynamic_power_w(100.0, 0.81 * GHZ)
        assert half < full / 2

    def test_linear_in_area(self):
        model = PowerModel()
        assert model.dynamic_power_w(200.0, GHZ) == pytest.approx(
            2 * model.dynamic_power_w(100.0, GHZ)
        )

    def test_demux_tradeoff_wins(self):
        """Two half-clock lanes burn less dynamic power than one full-clock
        pipeline of the same total area — demultiplexing pays."""
        model = PowerModel()
        one_fast = model.dynamic_power_w(100.0, 1.19 * GHZ)
        two_slow = 2 * model.dynamic_power_w(100.0, 1.19 * GHZ / 2)
        assert two_slow < one_fast

    def test_negative_area_rejected(self):
        with pytest.raises(ConfigError):
            PowerModel().dynamic_power_w(-1, GHZ)


class TestLeakageAndTotal:
    def test_leakage_scales_with_voltage(self):
        model = PowerModel()
        hot = model.leakage_power_w(100.0, 2 * GHZ)
        cool = model.leakage_power_w(100.0, 0.5 * GHZ)
        assert hot > cool

    def test_total_is_sum(self):
        model = PowerModel()
        total = model.total_power_w(50.0, 100.0, GHZ)
        assert total == pytest.approx(
            model.dynamic_power_w(50.0, GHZ) + model.leakage_power_w(100.0, GHZ)
        )

    def test_power_ratio(self):
        model = PowerModel()
        ratio = model.power_ratio(100.0, 1.62 * GHZ, 100.0, 0.6 * GHZ)
        assert ratio > 2.7  # frequency ratio x voltage-squared ratio
