"""Tests for the chip area model (repro.feasibility.area)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.feasibility.area import AreaModel, BlockArea
from repro.units import GHZ


class TestBlockArea:
    def test_total(self):
        block = BlockArea("b", 2.0, 3.0)
        assert block.total_mm2 == 5.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            BlockArea("b", -1.0, 0.0)


class TestLogicScale:
    def test_reference_frequency_is_unity(self):
        model = AreaModel()
        assert model.logic_scale(model.reference_frequency_hz) == pytest.approx(1.0)

    def test_lower_clock_shrinks_logic(self):
        """Section 4: 'Lower frequency can also translate into using
        potentially smaller gates'."""
        model = AreaModel()
        assert model.logic_scale(0.6 * GHZ) < 1.0
        assert model.logic_scale(0.6 * GHZ) >= model.min_logic_scale

    def test_scale_floor(self):
        model = AreaModel()
        assert model.logic_scale(0.01 * GHZ) == model.min_logic_scale

    def test_faster_clock_pays(self):
        model = AreaModel()
        assert model.logic_scale(2.0 * GHZ) > 1.0

    def test_invalid_frequency(self):
        with pytest.raises(ConfigError):
            AreaModel().logic_scale(0)


class TestPipelineArea:
    def test_memory_does_not_shrink_with_clock(self):
        model = AreaModel()
        fast = model.pipeline_area("f", 12, 16, 10, 2, 1.62 * GHZ)
        slow = model.pipeline_area("s", 12, 16, 10, 2, 0.6 * GHZ)
        assert slow.memory_mm2 == fast.memory_mm2
        assert slow.logic_mm2 < fast.logic_mm2

    def test_scales_with_stage_count(self):
        model = AreaModel()
        a12 = model.pipeline_area("a", 12, 16, 10, 2, GHZ)
        a24 = model.pipeline_area("b", 24, 16, 10, 2, GHZ)
        assert a24.memory_mm2 == pytest.approx(2 * a12.memory_mm2)

    def test_tcam_denser_cost_than_sram(self):
        model = AreaModel()
        sram = model.pipeline_area("s", 1, 1, 10, 0, GHZ)
        tcam = model.pipeline_area("t", 1, 1, 0, 10, GHZ)
        assert tcam.memory_mm2 > sram.memory_mm2

    def test_validation(self):
        with pytest.raises(ConfigError):
            AreaModel().pipeline_area("p", 0, 16, 1, 1, GHZ)


class TestTmArea:
    def test_grows_with_connected_pipelines(self):
        """The ADCP TM connects many more pipelines (section 3.3 expects
        64+), so its logic grows — quantified here."""
        model = AreaModel()
        small = model.tm_area("tm4", 4, 64, GHZ)
        large = model.tm_area("tm64", 64, 64, GHZ)
        assert large.logic_mm2 > small.logic_mm2

    def test_buffer_memory_accounted(self):
        model = AreaModel()
        thin = model.tm_area("t", 4, 16, GHZ)
        fat = model.tm_area("f", 4, 64, GHZ)
        assert fat.memory_mm2 == pytest.approx(4 * thin.memory_mm2)

    def test_validation(self):
        with pytest.raises(ConfigError):
            AreaModel().tm_area("t", 0, 16, GHZ)


class TestArrayInterconnect:
    def test_quadratic_in_width(self):
        model = AreaModel()
        w4 = model.array_interconnect_area("a", 4, 16, 12)
        w16 = model.array_interconnect_area("b", 16, 16, 12)
        assert w16.logic_mm2 == pytest.approx(16 * w4.logic_mm2)

    def test_width_bounded_by_maus(self):
        with pytest.raises(ConfigError):
            AreaModel().array_interconnect_area("a", 17, 16, 12)
