"""The ``repro stateful`` subcommand: options, artifacts, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.telemetry.ledger import STATEFUL_LEDGER_SCHEMA, load_ledger

_FAST = ["--flows", "32", "--packets", "120"]


class TestStatefulCLI:
    def test_runs_and_prints_lines(self, capsys):
        assert main(["stateful", "synflood", "--seed", "0"] + _FAST) == 0
        out = capsys.readouterr().out
        assert "adcp:synflood" in out
        assert "rmt:synflood" in out
        assert "detection=" in out

    def test_single_target(self, capsys):
        assert (
            main(["stateful", "tokenbucket", "--target", "rmt",
                  "--seed", "0"] + _FAST)
            == 0
        )
        out = capsys.readouterr().out
        assert "rmt:tokenbucket" in out
        assert "adcp:" not in out

    def test_json_mode_summary(self, capsys):
        assert (
            main(["--json", "stateful", "keycache", "--seed", "2"] + _FAST)
            == 0
        )
        summary = json.loads(capsys.readouterr().out)
        assert summary["workload"] == "keycache"
        assert summary["seed"] == 2
        assert "compile" in summary["sections"]
        assert "hit_rate" in summary["sections"]["adcp:keycache"]

    def test_ledger_written(self, tmp_path, capsys):
        out = tmp_path / "ledger.json"
        assert (
            main(["stateful", "heavyhitter", "--target", "adcp",
                  "--seed", "1", "--ledger", str(out)] + _FAST)
            == 0
        )
        capsys.readouterr()
        document = load_ledger(out)
        assert document["schema"] == STATEFUL_LEDGER_SCHEMA
        assert document["workload"] == "heavyhitter"

    def test_diffable_with_repro_diff(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        for path in (a, b):
            assert (
                main(["stateful", "tokenbucket", "--target", "adcp",
                      "--seed", "5", "--ledger", str(path)] + _FAST)
                == 0
            )
        assert main(["diff", str(a), str(b)]) == 0
        assert "unchanged" in capsys.readouterr().out

    def test_unknown_workload_exits_two(self, capsys):
        assert main(["stateful", "frobnicate"]) == 2
        assert "unknown stateful workload" in capsys.readouterr().err

    def test_bad_option_value_exits_two(self, capsys):
        assert main(["stateful", "synflood", "--flows", "many"]) == 2
        assert "--flows" in capsys.readouterr().err

    def test_missing_workload_exits_two(self, capsys):
        assert main(["stateful"]) == 2
        assert "exactly one workload" in capsys.readouterr().err

    def test_usage_mentions_stateful(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "stateful <workload>" in out
        assert "tokenbucket" in out
