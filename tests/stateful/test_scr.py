"""State-compute replication: exact counters, approximate admission.

The two poles of the SCR trade: commutative counters reconcile exactly
(drift identically zero), while token-bucket admission against per-lane
budget shares diverges from the sequential bucket — deterministically,
and bounded by the reconciliation period.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.stateful.scr import ReplicatedCounter, ScrTokenBucket


class TestReplicatedCounter:
    def test_lane_adds_fold_exactly(self):
        ctr = ReplicatedCounter("pkts", size=8, lanes=4)
        for lane in range(4):
            for _ in range(lane + 1):
                ctr.add(lane, 3)
        assert ctr.total(3) == 1 + 2 + 3 + 4
        ctr.reconcile()
        assert ctr.total(3) == 10
        assert ctr.drift() == 0

    def test_drift_is_zero_with_or_without_reconcile(self):
        ctr = ReplicatedCounter("pkts", size=4, lanes=3)
        for i in range(50):
            ctr.add(i % 3, i % 4, value=i)
        assert ctr.drift() == 0
        ctr.reconcile()
        assert ctr.drift() == 0

    def test_reconcile_reports_folded_cells(self):
        ctr = ReplicatedCounter("pkts", size=8, lanes=2)
        ctr.add(0, 0)
        ctr.add(1, 5)
        assert ctr.reconcile() == 2
        assert ctr.reconcile() == 0  # nothing pending

    def test_bad_lane_rejected(self):
        ctr = ReplicatedCounter("pkts", size=2, lanes=2)
        with pytest.raises(ConfigError, match="lane"):
            ctr.add(2, 0)


class TestScrTokenBucket:
    def test_burst_capacity_split_across_lanes(self):
        bucket = ScrTokenBucket(flows=1, lanes=4, capacity=8.0, refill_per_s=0.0)
        # Each lane owns 2 tokens; a one-lane burst exhausts its share
        # long before the logical bucket would be empty.
        admitted = sum(
            bucket.try_consume(0, 0, 1.0, now_s=0.0) for _ in range(8)
        )
        assert admitted == 2
        assert bucket.shadow_admitted == 8
        assert bucket.admit_divergence == 6

    def test_spread_traffic_matches_shadow(self):
        bucket = ScrTokenBucket(flows=1, lanes=4, capacity=8.0, refill_per_s=0.0)
        admitted = sum(
            bucket.try_consume(lane, 0, 1.0, now_s=0.0)
            for lane in (0, 1, 2, 3) * 2
        )
        assert admitted == 8
        assert bucket.admit_divergence == 0

    def test_reconcile_rebalances_lane_shares(self):
        bucket = ScrTokenBucket(flows=1, lanes=2, capacity=4.0, refill_per_s=0.0)
        for _ in range(2):
            bucket.try_consume(0, 0, 1.0, now_s=0.0)  # drain lane 0
        assert bucket.lane_tokens(0, 0) == 0.0
        moved = bucket.reconcile(now_s=0.0)
        assert moved == pytest.approx(1.0)
        assert bucket.lane_tokens(0, 0) == pytest.approx(1.0)
        assert bucket.lane_tokens(1, 0) == pytest.approx(1.0)
        assert bucket.tokens_moved == pytest.approx(1.0)

    def test_refill_restores_admission(self):
        bucket = ScrTokenBucket(flows=1, lanes=1, capacity=2.0, refill_per_s=2.0)
        assert bucket.try_consume(0, 0, 1.0, now_s=0.0)
        assert bucket.try_consume(0, 0, 1.0, now_s=0.0)
        assert not bucket.try_consume(0, 0, 1.0, now_s=0.0)
        assert bucket.try_consume(0, 0, 1.0, now_s=1.0)  # 2 tokens refilled

    def test_deterministic_divergence(self):
        def run():
            bucket = ScrTokenBucket(
                flows=4, lanes=4, capacity=4.0, refill_per_s=1.0
            )
            for i in range(200):
                bucket.try_consume(i % 4, (i * 7) % 4, 1.0, now_s=i * 0.01)
                if i % 50 == 49:
                    bucket.reconcile(now_s=i * 0.01)
            return (
                bucket.admitted,
                bucket.dropped,
                bucket.admit_divergence,
                bucket.tokens_moved,
            )

        assert run() == run()

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            ScrTokenBucket(flows=0, lanes=1, capacity=1.0, refill_per_s=0.0)
        with pytest.raises(ConfigError):
            ScrTokenBucket(flows=1, lanes=1, capacity=0.0, refill_per_s=0.0)
        bucket = ScrTokenBucket(flows=1, lanes=2, capacity=2.0, refill_per_s=0.0)
        with pytest.raises(ConfigError, match="lane"):
            bucket.try_consume(2, 0, 1.0, now_s=0.0)
