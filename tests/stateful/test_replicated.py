"""Replicated-state objects: merge convergence, traffic accounting.

The LOADER-style contract: every replica accepts local updates without
coordination; a merge round exchanges dirty entries all-to-all; after
quiescence plus one round every replica converges on the same value
(sum/max are CRDT-commutative, lww resolves by logical version).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.stateful.replicated import ReplicatedObject


class TestConstruction:
    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError, match="mode"):
            ReplicatedObject("x", 4, 2, mode="median")

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigError):
            ReplicatedObject("x", 0, 2)
        with pytest.raises(ConfigError):
            ReplicatedObject("x", 4, 0)


class TestSumMode:
    def test_local_update_visible_locally(self):
        obj = ReplicatedObject("ctr", 4, 3, mode="sum")
        obj.update(0, 1, 5)
        assert obj.read(0, 1) == 5
        assert obj.read(1, 1) == 0  # not merged yet

    def test_merge_converges_to_global_sum(self):
        obj = ReplicatedObject("ctr", 4, 3, mode="sum")
        obj.update(0, 1, 5)
        obj.update(1, 1, 7)
        obj.update(2, 0, 2)
        assert not obj.converged()
        obj.merge_round()
        assert obj.converged()
        for replica in range(3):
            assert obj.read(replica, 1) == 12
            assert obj.read(replica, 0) == 2

    def test_global_value_counts_pending_deltas(self):
        obj = ReplicatedObject("ctr", 2, 2, mode="sum")
        obj.update(0, 0, 3)
        obj.update(1, 0, 4)
        assert obj.global_value(0) == 7  # before any merge

    def test_rounds_to_convergence_single_round(self):
        obj = ReplicatedObject("ctr", 2, 4, mode="sum")
        for replica in range(4):
            obj.update(replica, 0, replica + 1)
        assert obj.rounds_to_convergence() == 1
        assert obj.read(2, 0) == 1 + 2 + 3 + 4


class TestMaxMode:
    def test_max_merge(self):
        obj = ReplicatedObject("hwm", 2, 3, mode="max")
        obj.update(0, 0, 10)
        obj.update(1, 0, 25)
        obj.update(2, 0, 5)
        obj.merge_round()
        for replica in range(3):
            assert obj.read(replica, 0) == 25
        assert obj.global_value(0) == 25


class TestLwwMode:
    def test_last_writer_wins_by_version(self):
        obj = ReplicatedObject("kv", 4, 2, mode="lww")
        obj.update(0, 2, 100)
        obj.update(1, 2, 200)  # later logical clock
        obj.merge_round()
        assert obj.read(0, 2) == 200
        assert obj.read(1, 2) == 200

    def test_stale_read_counted_before_merge(self):
        obj = ReplicatedObject("kv", 4, 2, mode="lww")
        obj.update(0, 1, 100)
        obj.merge_round()
        obj.update(0, 1, 300)  # replica 1 is now stale
        before = obj.stale_reads
        obj.read(1, 1)
        assert obj.stale_reads == before + 1
        obj.merge_round()
        before = obj.stale_reads
        obj.read(1, 1)
        assert obj.stale_reads == before  # fresh after merge

    def test_versions_advance_monotonically(self):
        obj = ReplicatedObject("kv", 2, 2, mode="lww")
        obj.update(0, 0, 1)
        v1 = obj.version(0, 0)
        obj.update(0, 0, 2)
        assert obj.version(0, 0) > v1


class TestMergeTraffic:
    def test_message_and_byte_accounting(self):
        obj = ReplicatedObject("ctr", 8, 3, mode="sum", width_bits=64)
        obj.update(0, 0, 1)
        obj.update(0, 1, 1)
        obj.update(2, 5, 1)
        stats = obj.merge_round()
        # Two dirty replicas, each broadcasting to the 2 peers.
        assert stats["messages"] == 4
        # Entries are per-receiver copies: 3 dirty slots x 2 peers each.
        assert stats["entries"] == 6
        # One entry = value bytes + slot/version overhead.
        assert stats["bytes"] == 6 * (64 // 8 + 8)
        assert obj.merge_messages == 4
        assert obj.merge_bytes == stats["bytes"]

    def test_quiet_merge_sends_nothing(self):
        obj = ReplicatedObject("ctr", 4, 3, mode="sum")
        stats = obj.merge_round()
        assert stats == {"messages": 0, "bytes": 0, "entries": 0}

    def test_counters_track_reads_and_updates(self):
        obj = ReplicatedObject("ctr", 4, 2, mode="sum")
        obj.update(0, 0, 1)
        obj.read(1, 0)
        assert obj.updates == 1
        assert obj.reads == 1
