"""EFSM construct: spec validation, transition semantics, lowering.

The compile tests pin the §3.2 divergence for the same machine: the
scalar RMT target replicates the flow table per key while the ADCP
array target keeps one copy, so RMT SRAM grows linearly in
keys-per-packet and ADCP's stays flat.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.program import Compiler, adcp_target, rmt_target
from repro.stateful.efsm import (
    Action,
    EfsmEngine,
    EfsmSpec,
    Guard,
    Transition,
    efsm_program,
)


def _toy_spec(**overrides) -> EfsmSpec:
    fields = dict(
        name="toy",
        states=("A", "B"),
        initial="A",
        events=("go", "back"),
        registers=(("count", 32),),
        transitions=(
            Transition("A", "go", "B", actions=(Action("count", "add", 1),)),
            Transition("B", "back", "A"),
        ),
    )
    fields.update(overrides)
    return EfsmSpec(**fields)


class _Ctx:
    """Minimal PipelineContext stand-in: named register arrays."""

    pipeline_index = 0

    def __init__(self):
        from repro.tables.registers import RegisterArray

        self._arrays = {}
        self._cls = RegisterArray

    def register(self, name, size, width_bits=32):
        if name not in self._arrays:
            self._arrays[name] = self._cls(name, size, width_bits=width_bits)
        return self._arrays[name]


class TestSpecValidation:
    def test_duplicate_states_rejected(self):
        with pytest.raises(ConfigError, match="duplicate states"):
            _toy_spec(states=("A", "A"))

    def test_unknown_initial_rejected(self):
        with pytest.raises(ConfigError, match="initial state"):
            _toy_spec(initial="Z")

    def test_transition_unknown_state_rejected(self):
        with pytest.raises(ConfigError, match="unknown state"):
            _toy_spec(transitions=(Transition("A", "go", "Z"),))

    def test_transition_unknown_event_rejected(self):
        with pytest.raises(ConfigError, match="unknown\nevent|unknown event"):
            _toy_spec(transitions=(Transition("A", "warp", "B"),))

    def test_guard_unknown_register_rejected(self):
        with pytest.raises(ConfigError, match="unknown\nregister|unknown register"):
            _toy_spec(
                transitions=(
                    Transition("A", "go", "B", guard=Guard("nope", "ge", 1)),
                )
            )

    def test_bad_guard_op_rejected(self):
        with pytest.raises(ConfigError, match="guard op"):
            Guard("count", "xor", 1)

    def test_bad_action_op_rejected(self):
        with pytest.raises(ConfigError, match="action op"):
            Action("count", "mul", 2)

    def test_state_width_bits(self):
        assert _toy_spec().state_width_bits == 1
        five = _toy_spec(
            states=("A", "B", "C", "D", "E"), transitions=()
        )
        assert five.state_width_bits == 3

    def test_flow_state_bits_sums_registers(self):
        assert _toy_spec().flow_state_bits == 1 + 32


class TestEngineSemantics:
    def test_transition_fires_and_updates_register(self):
        engine = EfsmEngine(_toy_spec(), flows=4)
        ctx = _Ctx()
        old, new, taken = engine.step(ctx, 0, "go")
        assert (old, new) == ("A", "B")
        assert taken is not None
        assert engine.state_of(0, 0) == "B"
        assert engine.register_of(0, 0, "count") == 1

    def test_unmatched_event_leaves_state(self):
        engine = EfsmEngine(_toy_spec(), flows=4)
        ctx = _Ctx()
        old, new, taken = engine.step(ctx, 0, "back")  # no rule in A
        assert (old, new) == ("A", "A")
        assert taken is None
        assert engine.unmatched == 1

    def test_guard_blocks_until_satisfied(self):
        spec = _toy_spec(
            transitions=(
                Transition(
                    "A", "go", "B",
                    guard=Guard("count", "ge", 2),
                ),
                Transition("A", "back", "A", actions=(Action("count", "add", 1),)),
            ),
        )
        engine = EfsmEngine(spec, flows=2)
        ctx = _Ctx()
        assert engine.step(ctx, 0, "go")[2] is None  # count=0 < 2
        engine.step(ctx, 0, "back")
        engine.step(ctx, 0, "back")
        assert engine.step(ctx, 0, "go")[1] == "B"

    def test_first_match_in_declaration_order(self):
        spec = _toy_spec(
            transitions=(
                Transition("A", "go", "B"),
                Transition("A", "go", "A"),  # shadowed
            ),
        )
        engine = EfsmEngine(spec, flows=1)
        assert engine.step(_Ctx(), 0, "go")[1] == "B"

    def test_event_value_flows_into_action(self):
        spec = _toy_spec(
            transitions=(
                Transition("A", "go", "B", actions=(Action("count", "max"),)),
            ),
        )
        engine = EfsmEngine(spec, flows=1)
        ctx = _Ctx()
        engine.step(ctx, 0, "go", value=17)
        assert engine.register_of(0, 0, "count") == 17

    def test_flows_are_independent_slots(self):
        engine = EfsmEngine(_toy_spec(), flows=4)
        ctx = _Ctx()
        engine.step(ctx, 1, "go")
        assert engine.state_of(0, 1) == "B"
        assert engine.state_of(0, 0) == "A"

    def test_transition_counts_labels(self):
        engine = EfsmEngine(_toy_spec(), flows=2)
        ctx = _Ctx()
        engine.step(ctx, 0, "go")
        engine.step(ctx, 0, "back")
        engine.step(ctx, 1, "go")
        assert engine.transition_counts() == {
            "A--go->B": 2,
            "B--back->A": 1,
        }

    def test_state_accesses_charged_on_arrays(self):
        engine = EfsmEngine(_toy_spec(), flows=2)
        ctx = _Ctx()
        engine.step(ctx, 0, "go")
        assert engine.state_accesses > 0


class TestEfsmProgramDivergence:
    """Lowering + compiling shows the paper's replication asymmetry."""

    def test_program_shape(self):
        program = efsm_program(_toy_spec(), flows=32, keys_per_packet=4)
        names = {t.name for t in program.tables()}
        assert names == {"toy_flow", "toy_trans"}

    def test_rmt_replicates_per_key_adcp_does_not(self):
        flows = 64
        sram = {}
        for k in (1, 2, 4, 8):
            program = efsm_program(_toy_spec(), flows, keys_per_packet=k)
            rmt_alloc = Compiler(rmt_target()).allocate(program)
            adcp_alloc = Compiler(adcp_target(array_width=16)).allocate(
                program
            )
            assert rmt_alloc.replication_factor("toy_flow") == k
            assert adcp_alloc.replication_factor("toy_flow") == 1
            sram[k] = (
                rmt_alloc.total_sram_blocks,
                adcp_alloc.total_sram_blocks,
            )
        # RMT SRAM grows with keys-per-packet; ADCP's stays flat.
        assert sram[8][0] > sram[1][0]
        assert sram[8][1] == sram[1][1]
