"""End-to-end stateful runs: both targets, both scopes, stable ledgers.

The determinism contract mirrors the fabric/serve ledgers: one seed →
one byte-identical ``repro.stateful_ledger/1`` artifact (modulo
``git_sha``), whatever the queue backend; a different seed moves the
draws.  The compile section must carry the §3.2 divergence on every
run.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.stateful.runner import run_stateful
from repro.stateful.workloads import STATEFUL_WORKLOADS

_FAST = dict(flows=32, packets=160)


def _canonical(run) -> str:
    ledger = run.ledger()
    ledger["git_sha"] = "pinned"
    return json.dumps(ledger, sort_keys=True)


class TestValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError, match="unknown stateful workload"):
            run_stateful("frobnicate")

    def test_bad_target_rejected(self):
        with pytest.raises(ConfigError, match="target"):
            run_stateful("tokenbucket", target="fpga")


class TestSingleSwitchEndToEnd:
    @pytest.mark.parametrize("workload", STATEFUL_WORKLOADS)
    def test_runs_on_both_targets(self, workload):
        run = run_stateful(workload, **_FAST)
        labels = [s.label for s in run.sections]
        assert labels == [
            f"adcp:{workload}", f"rmt:{workload}", "compile",
        ]
        for section in run.sections[:2]:
            assert section.series["delivered"]["mean"] > 0
            assert section.series["state_accesses"]["mean"] > 0

    def test_tokenbucket_rate_limits_hot_flows(self):
        run = run_stateful("tokenbucket", **_FAST)
        for section in run.sections[:2]:
            assert section.series["rate_limited"]["mean"] > 0
            assert section.series["goodput_pps"]["mean"] > 0
            assert section.series["goodput_pps"]["direction"] == "higher"

    def test_synflood_detects_attackers_cleanly(self):
        run = run_stateful("synflood", **_FAST)
        for section in run.sections[:2]:
            assert section.series["detection_rate"]["mean"] == 1.0
            assert section.series["false_positive_rate"]["mean"] == 0.0
            assert section.series["efsm.IDLE--syn->PENDING"]["mean"] > 0

    def test_heavyhitter_promotes_without_false_positives(self):
        run = run_stateful("heavyhitter", **_FAST)
        for section in run.sections[:2]:
            assert section.series["promotions"]["mean"] > 0
            assert section.series["detection_rate"]["mean"] > 0
            assert section.series["false_positive_rate"]["mean"] == 0.0

    def test_keycache_hits_and_merges(self):
        run = run_stateful("keycache", **_FAST)
        for section in run.sections[:2]:
            assert section.series["hit_rate"]["mean"] > 0
            assert section.series["hit_rate"]["direction"] == "higher"
            assert section.series["puts"]["mean"] > 0


class TestFabricEndToEnd:
    @pytest.mark.parametrize("workload", STATEFUL_WORKLOADS)
    def test_leaf_spine_both_targets(self, workload):
        run = run_stateful(
            workload, topology="leaf-spine-2x2", packets=128
        )
        assert [s.label for s in run.sections] == [
            f"adcp:{workload}@leaf-spine-2x2",
            f"rmt:{workload}@leaf-spine-2x2",
            "compile",
        ]
        for section in run.sections[:2]:
            assert section.series["delivered"]["mean"] > 0
            assert section.counters["switches"] >= 4

    def test_fabric_keycache_sees_cross_replica_staleness(self):
        run = run_stateful(
            "keycache", topology="leaf-spine-2x2", packets=256
        )
        for section in run.sections[:2]:
            assert section.series["merge_messages"]["mean"] > 0


class TestCompileDivergence:
    """Every ledger quantifies §3.2: RMT replicates per key, ADCP not."""

    def test_rmt_replication_grows_adcp_flat(self):
        run = run_stateful("synflood", **_FAST)
        compile_section = run.sections[-1]
        series = compile_section.series
        assert series["rmt.replication_factor.k1"]["mean"] == 1
        assert series["rmt.replication_factor.k16"]["mean"] == 16
        assert series["adcp.replication_factor.k16"]["mean"] == 1
        assert (
            series["rmt.sram_blocks.k16"]["mean"]
            > series["rmt.sram_blocks.k1"]["mean"]
        )
        assert (
            series["adcp.sram_blocks.k16"]["mean"]
            == series["adcp.sram_blocks.k1"]["mean"]
        )

    @pytest.mark.parametrize("workload", STATEFUL_WORKLOADS)
    def test_every_workload_carries_the_section(self, workload):
        run = run_stateful(workload, target="adcp", **_FAST)
        assert run.sections[-1].label == "compile"
        assert any(
            name.startswith("rmt.replication_factor")
            for name in run.sections[-1].series
        )


class TestLedgerDeterminism:
    @pytest.mark.parametrize("workload", STATEFUL_WORKLOADS)
    def test_same_seed_byte_identical(self, workload):
        first = _canonical(run_stateful(workload, seed=9, **_FAST))
        second = _canonical(run_stateful(workload, seed=9, **_FAST))
        assert first == second

    def test_different_seed_differs(self):
        base = _canonical(run_stateful("heavyhitter", seed=9, **_FAST))
        other = _canonical(run_stateful("heavyhitter", seed=10, **_FAST))
        assert base != other

    def test_fabric_ledger_deterministic(self):
        kwargs = dict(topology="leaf-spine-2x2", packets=128, seed=4)
        first = _canonical(run_stateful("synflood", **kwargs))
        second = _canonical(run_stateful("synflood", **kwargs))
        assert first == second

    def test_ledger_written_and_loadable(self, tmp_path):
        from repro.telemetry.ledger import STATEFUL_LEDGER_SCHEMA, load_ledger

        out = tmp_path / "stateful.json"
        run = run_stateful(
            "tokenbucket", target="adcp", ledger_out=out, **_FAST
        )
        assert run.ledger_path == out
        loaded = load_ledger(out)
        assert loaded["schema"] == STATEFUL_LEDGER_SCHEMA
        assert loaded["workload"] == "tokenbucket"
        labels = [s["label"] for s in loaded["sections"]]
        assert labels == ["adcp:tokenbucket", "compile"]
