"""Result cache: addressing, atomicity, corruption, invalidation."""

from __future__ import annotations

from repro.campaign import ResultCache, source_digest


def _cache(tmp_path, source="srcdigest") -> ResultCache:
    return ResultCache(tmp_path / "cache", source=source)


def test_roundtrip_counts_hits_and_misses(tmp_path):
    cache = _cache(tmp_path)
    assert cache.get("abc") is None
    assert (cache.hits, cache.misses) == (0, 1)
    cache.put("abc", {"schema": "x", "value": 1})
    assert cache.get("abc") == {"schema": "x", "value": 1}
    assert (cache.hits, cache.misses) == (1, 1)


def test_entries_keyed_by_source_and_config_digest(tmp_path):
    cache = _cache(tmp_path)
    cache.put("abc", {"value": 1})
    assert cache.path_for("abc").exists()
    assert "srcdigest" in str(cache.path_for("abc"))
    # A different source digest sees a cold cache over the same root.
    other = _cache(tmp_path, source="othersrc")
    assert other.get("abc") is None


def test_writes_are_atomic_and_leave_no_temp_files(tmp_path):
    cache = _cache(tmp_path)
    for i in range(5):
        cache.put("abc", {"value": i})
    directory = cache.path_for("abc").parent
    leftovers = [p for p in directory.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []
    assert cache.get("abc") == {"value": 4}


def test_corrupt_entry_reads_as_miss_and_is_dropped(tmp_path):
    cache = _cache(tmp_path)
    cache.put("abc", {"value": 1})
    cache.path_for("abc").write_text("{ torn json")
    assert cache.get("abc") is None
    assert not cache.path_for("abc").exists()
    # Wrong shape (valid JSON, wrong schema) is also a miss.
    cache.path_for("def").parent.mkdir(parents=True, exist_ok=True)
    cache.path_for("def").write_text('{"schema": "other", "x": 1}')
    assert cache.get("def") is None


def test_source_digest_is_stable_and_content_sensitive(tmp_path):
    # The real repo digest: stable across calls.
    assert source_digest() == source_digest()
    # The content-hash fallback (no git): sensitive to edits.
    src = tmp_path / "src"
    src.mkdir()
    (src / "m.py").write_text("x = 1\n")
    before = source_digest(tmp_path)
    (src / "m.py").write_text("x = 2\n")
    after = source_digest(tmp_path)
    assert before != after
    # No src tree at all degrades to the documented sentinel.
    assert source_digest(tmp_path / "nowhere") == "unknown"
