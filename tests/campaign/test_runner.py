"""Campaign orchestration: determinism, caching, resume, aggregation."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignSpec, Journal, run_campaign
from repro.errors import ConfigError


def _echo_spec(**overrides) -> CampaignSpec:
    base = dict(
        name="mini",
        target="_echo",
        mode="grid",
        axes={"value": [1, 2], "tag": [10, 20]},
        seed=3,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def _run(spec, tmp_path, run_id, **kwargs):
    kwargs.setdefault("out_dir", tmp_path / f"out{run_id}")
    kwargs.setdefault("cache_dir", tmp_path / f"cache{run_id}")
    return run_campaign(spec, **kwargs)


class TestDeterminism:
    def test_worker_count_does_not_change_report_bytes(self, tmp_path):
        serial = _run(_echo_spec(), tmp_path, "serial", workers=1)
        parallel = _run(_echo_spec(), tmp_path, "parallel", workers=4)
        assert serial.exit_code == parallel.exit_code == 0
        assert (
            serial.report_path.read_bytes()
            == parallel.report_path.read_bytes()
        )

    def test_cached_rerun_reproduces_report_bytes(self, tmp_path):
        cache = tmp_path / "shared_cache"
        first = _run(_echo_spec(), tmp_path, "a", cache_dir=cache)
        second = _run(_echo_spec(), tmp_path, "b", cache_dir=cache)
        assert second.cached_count == len(second.outcomes) == 4
        assert second.executed_count == 0
        assert (
            first.report_path.read_bytes()
            == second.report_path.read_bytes()
        )

    def test_no_cache_mode_stores_and_reuses_nothing(self, tmp_path):
        cache = tmp_path / "cache"
        first = _run(
            _echo_spec(), tmp_path, "a", cache_dir=cache, use_cache=False
        )
        assert first.cached_count == 0
        assert not cache.exists()
        second = _run(
            _echo_spec(), tmp_path, "b", cache_dir=cache, use_cache=False
        )
        assert second.cached_count == 0
        assert second.executed_count == 4


class TestAggregation:
    def test_report_is_a_diffable_run_ledger(self, tmp_path):
        from repro.telemetry.ledger import diff_ledgers, load_ledger

        run = _run(_echo_spec(), tmp_path, "a")
        document = load_ledger(run.report_path)
        assert document["workload"] == "campaign:mini"
        labels = [s["label"] for s in document["sections"]]
        assert labels == sorted(labels)
        assert "value=1,tag=10/echo" in labels
        diff = diff_ledgers(document, document)
        assert diff.exit_code == 0

    def test_axis_tables_group_by_value(self, tmp_path):
        run = _run(_echo_spec(), tmp_path, "a")
        tables = run.report["campaign"]["tables"]
        assert set(tables) == {"value", "tag"}
        assert tables["value"]["1"]["cells"] == 2
        assert tables["value"]["2"]["duration_s"] == pytest.approx(2.0)

    def test_unknown_target_rejected_before_any_execution(self, tmp_path):
        with pytest.raises(ConfigError, match="unknown cell target"):
            _run(_echo_spec(target="missing"), tmp_path, "a")


class TestFaults:
    def test_sigkilled_cell_retried_and_campaign_completes(self, tmp_path):
        spec = CampaignSpec(
            name="flaky",
            target="_flaky",
            mode="list",
            cells=(
                {"mode": "kill-once", "sentinel": str(tmp_path / "s0")},
                {"mode": "ok", "sentinel": str(tmp_path / "s1")},
            ),
        )
        # serial=False: a kill-once cell run in-process would SIGKILL
        # the test runner itself, so pin the subprocess pool path.
        run = _run(
            spec, tmp_path, "a", workers=2, backoff_s=0.01, serial=False
        )
        assert run.exit_code == 0
        killed = run.outcomes[0]
        assert killed.status == "ok" and killed.attempts == 2

    def test_permanent_failure_sets_exit_code_one(self, tmp_path):
        spec = _echo_spec(
            name="partial",
            target="_flaky",
            mode="list",
            axes={},
            cells=(
                {"mode": "fail-once", "sentinel": str(tmp_path / "s0"),
                 "attempt": 1},
                {"mode": "fail-once", "sentinel": str(tmp_path / "s0"),
                 "attempt": 2},
            ),
        )
        # Both cells share a sentinel: the first to run creates it and
        # fails; the second finds it and succeeds.
        run = _run(spec, tmp_path, "a", workers=1, backoff_s=0.01)
        assert run.exit_code == 1
        assert len(run.failed) == 1
        # The report still aggregates the completed cell.
        assert len(run.report["sections"]) == 1


class TestSerialExecution:
    def test_one_worker_auto_selects_serial_and_journals_it(
        self, tmp_path
    ):
        run = _run(_echo_spec(), tmp_path, "a", workers=1)
        assert run.exit_code == 0
        start = Journal(run.journal_path).read()[0]
        assert start["event"] == "campaign_start"
        assert start["execution"] == "serial"

    def test_forced_pool_is_journaled_as_pool(self, tmp_path):
        run = _run(_echo_spec(), tmp_path, "a", workers=1, serial=False)
        assert run.exit_code == 0
        start = Journal(run.journal_path).read()[0]
        assert start["execution"] == "pool"

    def test_serial_and_pool_reports_are_byte_identical(self, tmp_path):
        serial = _run(_echo_spec(), tmp_path, "s", serial=True)
        pooled = _run(
            _echo_spec(), tmp_path, "p", workers=2, serial=False
        )
        assert serial.exit_code == pooled.exit_code == 0
        assert (
            serial.report_path.read_bytes()
            == pooled.report_path.read_bytes()
        )

    def test_serial_failure_does_not_block_later_cells(self, tmp_path):
        spec = _echo_spec(
            name="serialfail",
            target="_flaky",
            mode="list",
            axes={},
            cells=(
                {"mode": "fail-once", "sentinel": str(tmp_path / "s0"),
                 "cell": 0},
                {"mode": "ok", "sentinel": str(tmp_path / "s1"),
                 "cell": 1},
            ),
        )
        run = _run(spec, tmp_path, "a", serial=True)
        assert run.exit_code == 1
        assert [o.status for o in run.outcomes] == ["failed", "ok"]
        assert run.failed[0].attempts == 1


class TestResume:
    def test_resume_reruns_only_incomplete_cells(self, tmp_path):
        cache = tmp_path / "cache"
        out = tmp_path / "out"
        sentinel = tmp_path / "sentinel"
        spec = CampaignSpec(
            name="resumable",
            target="_flaky",
            mode="list",
            cells=(
                {"mode": "ok", "sentinel": str(tmp_path / "other"),
                 "cell": 0},
                {"mode": "fail-once", "sentinel": str(sentinel),
                 "cell": 1},
                {"mode": "ok", "sentinel": str(tmp_path / "other2"),
                 "cell": 2},
            ),
        )
        first = run_campaign(
            spec, out_dir=out, cache_dir=cache, backoff_s=0.01
        )
        assert first.exit_code == 1
        assert len(first.failed) == 1

        resumed = run_campaign(
            spec,
            out_dir=out,
            cache_dir=cache,
            resume=True,
            backoff_s=0.01,
        )
        assert resumed.exit_code == 0
        # Only the previously-failed cell executed; the others replayed
        # from journal + cache without running.
        assert resumed.executed_count == 1
        assert sum(1 for o in resumed.outcomes if o.resumed) == 2
        events = [r.get("event") for r in Journal(out / "journal.jsonl").read()]
        assert "campaign_resume" in events
        assert len(resumed.report["sections"]) == 3

    def test_resume_requires_a_journal(self, tmp_path):
        with pytest.raises(ConfigError, match="campaign_start"):
            run_campaign(
                _echo_spec(),
                out_dir=tmp_path / "fresh",
                cache_dir=tmp_path / "cache",
                resume=True,
            )

    def test_resume_refuses_a_changed_spec(self, tmp_path):
        out = tmp_path / "out"
        _run(_echo_spec(), tmp_path, "a", out_dir=out)
        with pytest.raises(ConfigError, match="spec changed"):
            run_campaign(
                _echo_spec(seed=4),
                out_dir=out,
                cache_dir=tmp_path / "cachea",
                resume=True,
            )


class TestJournal:
    def test_journal_records_every_terminal_event(self, tmp_path):
        run = _run(_echo_spec(), tmp_path, "a")
        records = Journal(run.journal_path).read()
        events = [r["event"] for r in records]
        assert events[0] == "campaign_start"
        assert events.count("cell_done") == 4
        assert events[-1] == "campaign_end"
        assert records[-1]["ok"] is True

    def test_journal_tolerates_a_torn_tail(self, tmp_path):
        run = _run(_echo_spec(), tmp_path, "a")
        with run.journal_path.open("a") as handle:
            handle.write('{"event": "cell_do')  # torn write
        records = Journal(run.journal_path).read()
        assert all("event" in r for r in records)


def test_design_space_cell_produces_a_monitored_ledger(tmp_path):
    """One real simulator cell end-to-end (kept tiny for speed)."""
    from repro.campaign import run_cell

    ledger = run_cell(
        "design-space",
        {
            "array_width": 8,
            "demux_factor": 1,
            "port_speed_gbps": 100,
            "seed": 1,
            "vector": 32,
        },
    )
    assert ledger["schema"].startswith("repro.run_ledger")
    (section,) = ledger["sections"]
    assert section["delivered"] > 0
    assert section["series"]  # monitored resource series present


def test_coflow_mix_cell_validates_app_names():
    from repro.campaign import run_cell

    with pytest.raises(ConfigError, match="coflow-mix app"):
        run_cell("coflow-mix", {"app": "nope", "seed": 1})
