"""``python -m repro campaign`` exit codes, options, and output."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


def _campaign(tmp_path, *extra: str) -> list[str]:
    spec = tmp_path / "mini.json"
    spec.write_text(
        json.dumps(
            {
                "name": "mini",
                "target": "_echo",
                "mode": "grid",
                "axes": {"value": [1, 2]},
                "seed": 3,
            }
        )
    )
    return [
        "campaign",
        str(spec),
        "--out",
        str(tmp_path / "out"),
        "--cache-dir",
        str(tmp_path / "cache"),
        *extra,
    ]


def test_campaign_spec_file_runs_to_exit_zero(tmp_path, capsys):
    assert main(_campaign(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "campaign 'mini'" in out
    assert (tmp_path / "out" / "report.json").exists()
    assert (tmp_path / "out" / "journal.jsonl").exists()


def test_campaign_json_summary(tmp_path, capsys):
    assert main(_campaign(tmp_path, "--json")) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["campaign"] == "mini"
    assert summary["cells"] == 2
    assert summary["exit_code"] == 0
    assert summary["failed"] == []
    assert summary["report"]["workload"] == "campaign:mini"


def test_campaign_axis_override_restricts_the_grid(tmp_path, capsys):
    assert main(_campaign(tmp_path, "--json", "--axis", "value=2")) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["cells"] == 1


def test_cell_failure_exits_one(tmp_path, capsys):
    spec = tmp_path / "bad.json"
    spec.write_text(
        json.dumps(
            {
                "name": "bad",
                "target": "_flaky",
                "mode": "list",
                "cells": [
                    {
                        "mode": "fail-once",
                        "sentinel": str(tmp_path / "sentinel"),
                    }
                ],
            }
        )
    )
    code = main(
        [
            "campaign",
            str(spec),
            "--out",
            str(tmp_path / "out"),
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
    )
    assert code == 1
    assert "failed" in capsys.readouterr().out


@pytest.mark.parametrize(
    "argv",
    [
        ["campaign"],  # no spec
        ["campaign", "no-such-campaign"],  # unknown builtin
        ["campaign", "design-space", "--workers", "zero"],  # bad int
        ["campaign", "design-space", "--workers", "0"],  # below minimum
        ["campaign", "design-space", "--axis", "nope"],  # malformed axis
        ["campaign", "design-space", "--axis", "missing=1"],  # unknown axis
        ["campaign", "design-space", "--frobnicate"],  # unknown option
    ],
)
def test_bad_invocations_exit_two(argv, capsys):
    assert main(argv) == 2
    assert "error:" in capsys.readouterr().err


def test_unknown_builtin_error_lists_the_builtins(capsys):
    assert main(["campaign", "no-such-campaign"]) == 2
    err = capsys.readouterr().err
    assert "design-space" in err and "coflow-mix" in err


def test_help_documents_campaign_and_exit_codes(capsys):
    assert main(["--help"]) == 0
    out = capsys.readouterr().out
    assert "campaign <spec.toml|spec.json|builtin>" in out
    assert "exit codes: 0 ok, 1 cell failure/interrupt, 2 bad spec" in out
