"""Campaign spec validation, expansion, digests, and loading."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    BUILTIN_CAMPAIGNS,
    CampaignSpec,
    load_spec,
    resolve_spec,
    spec_from_document,
)
from repro.campaign.spec import config_digest
from repro.errors import ConfigError


def _grid(**overrides) -> CampaignSpec:
    base = dict(
        name="t",
        target="_echo",
        mode="grid",
        axes={"a": [1, 2], "b": [10, 20, 30]},
        seed=5,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestExpansion:
    def test_grid_is_row_major_cartesian_product(self):
        cells = _grid().expand()
        assert len(cells) == 6
        assert [c.params["a"] for c in cells] == [1, 1, 1, 2, 2, 2]
        assert [c.params["b"] for c in cells] == [10, 20, 30] * 2
        assert cells[0].label == "a=1,b=10"
        assert [c.index for c in cells] == list(range(6))

    def test_zip_advances_axes_in_lockstep(self):
        spec = _grid(mode="zip", axes={"a": [1, 2], "b": [10, 20]})
        cells = spec.expand()
        assert [(c.params["a"], c.params["b"]) for c in cells] == [
            (1, 10),
            (2, 20),
        ]

    def test_zip_rejects_unequal_lengths(self):
        with pytest.raises(ConfigError, match="equal lengths"):
            _grid(mode="zip")

    def test_list_mode_takes_explicit_cells(self):
        spec = CampaignSpec(
            name="t",
            target="_echo",
            mode="list",
            cells=({"a": 1}, {"a": 2, "b": 3}),
        )
        cells = spec.expand()
        assert len(cells) == 2
        assert cells[1].params["b"] == 3

    def test_fixed_parameters_reach_every_cell(self):
        spec = _grid(fixed={"vector": 64})
        assert all(c.params["vector"] == 64 for c in spec.expand())

    def test_duplicate_cells_rejected(self):
        spec = CampaignSpec(
            name="t",
            target="_echo",
            mode="list",
            cells=({"a": 1}, {"a": 1}),
        )
        with pytest.raises(ConfigError, match="identical parameters"):
            spec.expand()


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ConfigError, match="mode must be one of"):
            _grid(mode="sweep")

    def test_empty_axis(self):
        with pytest.raises(ConfigError, match="non-empty list"):
            _grid(axes={"a": []})

    def test_non_scalar_axis_value(self):
        with pytest.raises(ConfigError, match="scalar"):
            _grid(axes={"a": [[1, 2]]})

    def test_duplicate_axis_values(self):
        with pytest.raises(ConfigError, match="duplicate values"):
            _grid(axes={"a": [1, 1]})

    def test_negative_seed(self):
        with pytest.raises(ConfigError, match="non-negative"):
            _grid(seed=-1)

    def test_grid_mode_rejects_explicit_cells(self):
        with pytest.raises(ConfigError, match="mode"):
            _grid(cells=({"a": 1},))


class TestDigestsAndSeeds:
    def test_digests_are_stable_and_axis_order_independent(self):
        first = _grid().expand()
        reordered = CampaignSpec(
            name="t",
            target="_echo",
            mode="grid",
            # Same axes, same declaration order; values reordered within
            # an axis produce the same digest *set* in a different order.
            axes={"a": [2, 1], "b": [30, 20, 10]},
            seed=5,
        ).expand()
        assert {c.digest for c in first} == {c.digest for c in reordered}
        assert [c.digest for c in first] != [c.digest for c in reordered]

    def test_digest_changes_with_params_target_and_base_seed(self):
        base = _grid().expand()[0]
        assert _grid(seed=6).expand()[0].digest != base.digest
        assert _grid(target="_flaky").expand()[0].digest != base.digest
        assert (
            _grid(axes={"a": [3, 2], "b": [10, 20, 30]})
            .expand()[0]
            .digest
            != base.digest
        )

    def test_derived_seeds_are_deterministic_and_distinct(self):
        cells = _grid().expand()
        again = _grid().expand()
        assert [c.params["seed"] for c in cells] == [
            c.params["seed"] for c in again
        ]
        assert len({c.params["seed"] for c in cells}) == len(cells)

    def test_explicit_seed_axis_is_used_verbatim(self):
        spec = _grid(axes={"seed": [111, 222]})
        assert [c.params["seed"] for c in spec.expand()] == [111, 222]
        # Explicitly-seeded cells ignore the base seed, so their digests
        # (= cache keys) survive a base-seed change.
        other = _grid(axes={"seed": [111, 222]}, seed=99)
        assert [c.digest for c in spec.expand()] == [
            c.digest for c in other.expand()
        ]

    def test_spec_digest_covers_the_whole_document(self):
        assert _grid().digest() == _grid().digest()
        assert _grid().digest() != _grid(seed=6).digest()
        assert config_digest({"a": 1, "b": 2}) == config_digest(
            {"b": 2, "a": 1}
        )


class TestOverridesAndLoading:
    def test_restrict_axes(self):
        spec = _grid().restrict_axes({"b": [10]})
        assert len(spec.expand()) == 2

    def test_restrict_unknown_axis(self):
        with pytest.raises(ConfigError, match="no axis"):
            _grid().restrict_axes({"c": [1]})

    def test_restrict_rejected_outside_grid_mode(self):
        spec = _grid(mode="zip", axes={"a": [1], "b": [2]})
        with pytest.raises(ConfigError, match="grid"):
            spec.restrict_axes({"a": [1]})

    def test_unknown_document_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            spec_from_document({"target": "_echo", "axis": {}})

    def test_json_spec_roundtrip(self, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(json.dumps(_grid().to_document()))
        loaded = load_spec(path)
        assert loaded == _grid()

    def test_toml_spec_loads(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")  # noqa: F841 - 3.11+
        path = tmp_path / "mini.toml"
        path.write_text(
            'name = "t"\ntarget = "_echo"\nmode = "grid"\nseed = 5\n'
            "[axes]\na = [1, 2]\nb = [10, 20, 30]\n"
        )
        assert load_spec(path) == _grid()

    def test_unknown_spec_name_lists_builtins(self):
        with pytest.raises(ConfigError, match="design-space"):
            resolve_spec("nope")

    def test_builtins_validate_and_expand(self):
        expected = {
            "design-space": 8,
            "coflow-mix": 8,
            "fabric-sweep": 6,
            "stateful-sweep": 8,
        }
        assert set(expected) == set(BUILTIN_CAMPAIGNS)
        for name in BUILTIN_CAMPAIGNS:
            cells = resolve_spec(name).expand()
            assert len(cells) == expected[name]
            assert len({c.digest for c in cells}) == len(cells)
