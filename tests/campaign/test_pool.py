"""Worker pool fault handling: crash retry, timeouts, determinism."""

from __future__ import annotations

import pytest

from repro.campaign.pool import Job, WorkerPool, run_serial
from repro.errors import ConfigError


def _echo_jobs(count: int) -> list[Job]:
    return [
        Job(i, "_echo", {"seed": i, "value": i}, label=f"cell{i}")
        for i in range(count)
    ]


def test_results_ordered_by_index_regardless_of_workers():
    for workers in (1, 3):
        outcome = WorkerPool(workers=workers).run(_echo_jobs(5))
        assert [r.index for r in outcome.results] == list(range(5))
        assert all(r.status == "ok" for r in outcome.results)
        assert [
            r.value["sections"][0]["duration_s"] for r in outcome.results
        ] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert not outcome.interrupted


def test_sigkilled_worker_is_retried_and_succeeds(tmp_path):
    jobs = [
        Job(
            0,
            "_flaky",
            {
                "seed": 0,
                "sentinel": str(tmp_path / "sentinel"),
                "mode": "kill-once",
            },
        )
    ]
    outcome = WorkerPool(workers=1, backoff_s=0.01).run(jobs)
    (result,) = outcome.results
    assert result.status == "ok"
    assert result.attempts == 2  # first attempt SIGKILLed itself


def test_deterministic_exception_is_not_retried(tmp_path):
    jobs = [
        Job(
            0,
            "_flaky",
            {
                "seed": 0,
                "sentinel": str(tmp_path / "sentinel"),
                "mode": "fail-once",
            },
        )
    ]
    outcome = WorkerPool(workers=1, backoff_s=0.01).run(jobs)
    (result,) = outcome.results
    assert result.status == "failed"
    assert result.attempts == 1
    assert "injected failure" in result.error


def test_unknown_target_fails_without_retry():
    outcome = WorkerPool(workers=1).run([Job(0, "no-such", {})])
    (result,) = outcome.results
    assert result.status == "failed"
    assert "unknown cell target" in result.error


def test_timeout_kills_and_eventually_fails(tmp_path):
    jobs = [
        Job(
            0,
            "_flaky",
            {
                "seed": 0,
                "sentinel": str(tmp_path / "sentinel"),
                "mode": "sleep-always",
                "sleep_s": 30.0,
            },
        )
    ]
    outcome = WorkerPool(
        workers=1, timeout_s=0.2, max_retries=1, backoff_s=0.01
    ).run(jobs)
    (result,) = outcome.results
    assert result.status == "failed"
    assert result.attempts == 2  # original + one retry, both timed out
    assert "timeout" in result.error


def test_failures_do_not_block_other_cells(tmp_path):
    jobs = _echo_jobs(3) + [
        Job(
            3,
            "_flaky",
            {
                "seed": 3,
                "sentinel": str(tmp_path / "sentinel"),
                "mode": "fail-once",
            },
        )
    ]
    outcome = WorkerPool(workers=2, backoff_s=0.01).run(jobs)
    statuses = {r.index: r.status for r in outcome.results}
    assert statuses == {0: "ok", 1: "ok", 2: "ok", 3: "failed"}


def test_pool_parameter_validation():
    with pytest.raises(ConfigError):
        WorkerPool(workers=0)
    with pytest.raises(ConfigError):
        WorkerPool(timeout_s=0)
    with pytest.raises(ConfigError):
        WorkerPool(max_retries=-1)


def test_on_done_fires_once_per_job():
    seen: list[int] = []
    WorkerPool(workers=2).run(
        _echo_jobs(4), on_done=lambda job, result: seen.append(job.index)
    )
    assert sorted(seen) == [0, 1, 2, 3]


class TestSerial:
    def test_serial_matches_pool_values(self):
        serial = run_serial(_echo_jobs(4))
        pooled = WorkerPool(workers=2).run(_echo_jobs(4))
        assert [r.index for r in serial.results] == [0, 1, 2, 3]
        assert all(r.status == "ok" for r in serial.results)
        assert [r.value for r in serial.results] == [
            r.value for r in pooled.results
        ]
        assert not serial.interrupted

    def test_serial_failure_is_permanent_single_attempt(self, tmp_path):
        jobs = _echo_jobs(1) + [
            Job(
                1,
                "_flaky",
                {
                    "seed": 1,
                    "sentinel": str(tmp_path / "sentinel"),
                    "mode": "fail-once",
                },
            )
        ] + [Job(2, "_echo", {"seed": 2, "value": 2})]
        outcome = run_serial(jobs)
        statuses = {r.index: r.status for r in outcome.results}
        assert statuses == {0: "ok", 1: "failed", 2: "ok"}
        failed = outcome.by_index()[1]
        assert failed.attempts == 1
        assert "injected failure" in failed.error

    def test_serial_on_done_fires_in_job_order(self):
        seen: list[int] = []
        run_serial(
            _echo_jobs(3),
            on_done=lambda job, result: seen.append(job.index),
        )
        assert seen == [0, 1, 2]
