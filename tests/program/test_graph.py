"""Tests for program dependency graphs (repro.program.graph)."""

from __future__ import annotations

import pytest

from repro.errors import CompileError, ConfigError
from repro.program.graph import DependencyKind, ProgramGraph
from repro.program.spec import ActionSpec, TableSpec
from repro.tables.mat import MatchKind


def _table(name: str, **kwargs) -> TableSpec:
    defaults = dict(kind=MatchKind.EXACT, key_width_bits=32, capacity=1024)
    defaults.update(kwargs)
    return TableSpec(name, **defaults)  # type: ignore[arg-type]


class TestTableSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            _table("")
        with pytest.raises(ConfigError):
            _table("t", capacity=0)
        with pytest.raises(ConfigError):
            _table("t", keys_per_packet=0)
        with pytest.raises(ConfigError):
            _table("t", stateful_bits=-1)

    def test_max_action_slots(self):
        spec = _table(
            "t", actions=(ActionSpec("a", 2), ActionSpec("b", 5))
        )
        assert spec.max_action_slots == 5
        assert _table("t").max_action_slots == 0


class TestProgramGraph:
    def test_add_and_lookup(self):
        program = ProgramGraph()
        program.add_table(_table("t1"))
        assert "t1" in program
        assert program.table("t1").name == "t1"
        assert len(program) == 1

    def test_duplicate_rejected(self):
        program = ProgramGraph()
        program.add_table(_table("t"))
        with pytest.raises(ConfigError):
            program.add_table(_table("t"))

    def test_dependency_on_unknown_rejected(self):
        program = ProgramGraph()
        program.add_table(_table("a"))
        with pytest.raises(ConfigError):
            program.add_dependency("a", "ghost")

    def test_self_dependency_rejected(self):
        program = ProgramGraph()
        program.add_table(_table("a"))
        with pytest.raises(ConfigError):
            program.add_dependency("a", "a")

    def test_cycle_rejected_and_rolled_back(self):
        program = ProgramGraph()
        for name in "abc":
            program.add_table(_table(name))
        program.add_dependency("a", "b")
        program.add_dependency("b", "c")
        with pytest.raises(CompileError):
            program.add_dependency("c", "a")
        # Graph unchanged by the failed edge:
        assert program.depth == 3

    def test_levels_respect_dependencies(self):
        program = ProgramGraph()
        for name in ("parse", "route", "acl", "stats"):
            program.add_table(_table(name))
        program.add_dependency("parse", "route")
        program.add_dependency("parse", "acl")
        program.add_dependency("route", "stats")
        levels = program.levels()
        names = [[t.name for t in level] for level in levels]
        assert names[0] == ["parse"]
        assert set(names[1]) == {"acl", "route"}
        assert names[2] == ["stats"]

    def test_depth_and_critical_path(self):
        program = ProgramGraph()
        for name in "abcd":
            program.add_table(_table(name))
        program.add_dependency("a", "b")
        program.add_dependency("b", "c")
        assert program.depth == 3
        assert program.critical_path() == ["a", "b", "c"]

    def test_dependencies_query(self):
        program = ProgramGraph()
        program.add_table(_table("a"))
        program.add_table(_table("b"))
        program.add_dependency("a", "b", DependencyKind.ACTION)
        deps = program.dependencies("b")
        assert deps == [("a", DependencyKind.ACTION)]

    def test_empty_graph(self):
        program = ProgramGraph()
        assert program.depth == 0
        assert program.critical_path() == []
        assert program.levels() == []
