"""Tests for the stage allocator (repro.program.compiler).

The scalar-vs-array replication discipline tested here is the Figure 3 /
Figure 6 contrast in miniature.
"""

from __future__ import annotations

import pytest

from repro.errors import CompileError, ConfigError
from repro.program.compiler import Compiler, TargetModel, adcp_target, rmt_target
from repro.program.graph import ProgramGraph
from repro.program.spec import ActionSpec, TableSpec
from repro.tables.mat import MatchKind


def _program(*specs: TableSpec, deps=()) -> ProgramGraph:
    program = ProgramGraph()
    for spec in specs:
        program.add_table(spec)
    for before, after in deps:
        program.add_dependency(before, after)
    return program


def _table(name: str, **kwargs) -> TableSpec:
    defaults = dict(kind=MatchKind.EXACT, key_width_bits=32, capacity=1024)
    defaults.update(kwargs)
    return TableSpec(name, **defaults)  # type: ignore[arg-type]


class TestTargetModel:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TargetModel("t", stages=0)
        with pytest.raises(ConfigError):
            TargetModel("t", array_width=0)

    def test_array_capability(self):
        assert not rmt_target().is_array_capable
        assert adcp_target().is_array_capable

    def test_blocks_for_includes_state(self):
        target = rmt_target()
        plain = _table("t")
        stateful = _table("s", stateful_bits=1024 * 112 * 2)
        _, plain_blocks = target.blocks_for(plain)
        _, stateful_blocks = target.blocks_for(stateful)
        assert stateful_blocks == plain_blocks + 2


class TestScalarReplication:
    def test_multi_key_table_replicates_on_rmt(self):
        """Figure 3: k keys per packet force k table copies on a scalar
        target, multiplying block cost without adding capacity."""
        program = _program(_table("kv", keys_per_packet=8))
        allocation = Compiler(rmt_target()).allocate(program)
        assert allocation.replication_factor("kv") == 8
        assert allocation.total_maus == 8
        single = Compiler(rmt_target()).allocate(
            _program(_table("kv", keys_per_packet=1))
        )
        assert allocation.total_sram_blocks == 8 * single.total_sram_blocks
        # Capacity does NOT multiply — replicas hold the same entries.
        assert allocation.effective_capacity("kv") == 1024

    def test_single_copy_on_adcp(self):
        """Figure 6: the array target places one copy with a ganged MAU
        group sharing its memory."""
        program = _program(_table("kv", keys_per_packet=8))
        allocation = Compiler(adcp_target(array_width=16)).allocate(program)
        assert allocation.replication_factor("kv") == 1
        assert allocation.total_maus == 8  # ganged, but one memory copy
        single = Compiler(adcp_target(array_width=16)).allocate(
            _program(_table("kv", keys_per_packet=1))
        )
        assert allocation.total_sram_blocks == single.total_sram_blocks

    def test_width_beyond_array_rejected_on_adcp(self):
        program = _program(_table("kv", keys_per_packet=32))
        with pytest.raises(CompileError):
            Compiler(adcp_target(array_width=16)).allocate(program)

    def test_replicas_fill_stage_then_spill(self):
        """17 replicas at 16 MAUs/stage spill into a second stage."""
        program = _program(_table("kv", keys_per_packet=17))
        allocation = Compiler(rmt_target()).allocate(program)
        assert allocation.stages_used == 2


class TestDependencies:
    def test_dependent_tables_in_later_stages(self):
        program = _program(
            _table("first"),
            _table("second"),
            deps=[("first", "second")],
        )
        allocation = Compiler(rmt_target()).allocate(program)
        assert allocation.stage_of("second") > allocation.stage_of("first")

    def test_independent_tables_share_a_stage(self):
        program = _program(_table("a"), _table("b"))
        allocation = Compiler(rmt_target()).allocate(program)
        assert allocation.stage_of("a") == allocation.stage_of("b")

    def test_deep_chain_exceeding_stages_fails(self):
        tables = [_table(f"t{i}") for i in range(5)]
        deps = [(f"t{i}", f"t{i + 1}") for i in range(4)]
        program = _program(*tables, deps=deps)
        with pytest.raises(CompileError):
            Compiler(rmt_target(stages=4)).allocate(program)

    def test_chain_fitting_exactly(self):
        tables = [_table(f"t{i}") for i in range(4)]
        deps = [(f"t{i}", f"t{i + 1}") for i in range(3)]
        program = _program(*tables, deps=deps)
        allocation = Compiler(rmt_target(stages=4)).allocate(program)
        assert allocation.stages_used == 4


class TestResourceLimits:
    def test_memory_pressure_spills_stages(self):
        # Each copy needs 40 of the 80 SRAM blocks; three tables need two
        # stages.
        big = [
            _table(f"big{i}", capacity=40 * 1024) for i in range(3)
        ]
        allocation = Compiler(rmt_target()).allocate(_program(*big))
        assert allocation.stages_used == 2

    def test_table_larger_than_stage_fails(self):
        program = _program(_table("huge", capacity=81 * 1024))
        with pytest.raises(CompileError):
            Compiler(rmt_target()).allocate(program)

    def test_tcam_budget_independent(self):
        lpm = _table("lpm", kind=MatchKind.LPM, key_width_bits=32, capacity=2048)
        exact = _table("exact", capacity=1024)
        allocation = Compiler(rmt_target()).allocate(_program(lpm, exact))
        assert allocation.total_tcam_blocks == 1
        assert allocation.total_sram_blocks == 1
        assert allocation.stage_of("lpm") == allocation.stage_of("exact")

    def test_action_slots_checked(self):
        wide = _table("wide", actions=(ActionSpec("mega", 9),))
        with pytest.raises(CompileError):
            Compiler(rmt_target(action_slots=8)).allocate(_program(wide))

    def test_unallocated_table_queries_raise(self):
        allocation = Compiler(rmt_target()).allocate(_program(_table("a")))
        with pytest.raises(ConfigError):
            allocation.replication_factor("ghost")
        with pytest.raises(ConfigError):
            allocation.effective_capacity("ghost")
        with pytest.raises(ConfigError):
            allocation.stage_of("ghost")
