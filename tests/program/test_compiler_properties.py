"""Property-based tests for the stage allocator (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompileError
from repro.program.compiler import Compiler, adcp_target, rmt_target
from repro.program.graph import ProgramGraph
from repro.program.spec import TableSpec
from repro.tables.mat import MatchKind


@st.composite
def random_program(draw):
    """A random DAG of small tables with chain dependencies."""
    count = draw(st.integers(min_value=1, max_value=8))
    specs = []
    for i in range(count):
        specs.append(
            TableSpec(
                f"t{i}",
                draw(st.sampled_from([MatchKind.EXACT, MatchKind.TERNARY])),
                key_width_bits=draw(st.sampled_from([16, 32, 64])),
                capacity=draw(st.sampled_from([256, 1024, 4096])),
                keys_per_packet=draw(st.sampled_from([1, 2, 4])),
            )
        )
    program = ProgramGraph()
    for spec in specs:
        program.add_table(spec)
    # Random forward edges (i -> j with i < j keeps it acyclic).
    for i in range(count):
        for j in range(i + 1, count):
            if draw(st.booleans()) and draw(st.booleans()):
                program.add_dependency(f"t{i}", f"t{j}")
    return program


class TestAllocatorInvariants:
    @settings(deadline=None, max_examples=40)
    @given(random_program())
    def test_budgets_never_exceeded(self, program):
        """Whatever the program, a successful allocation respects every
        per-stage budget."""
        target = rmt_target()
        try:
            allocation = Compiler(target).allocate(program)
        except CompileError:
            return  # refusing is always legal
        for placement in allocation.placements:
            assert placement.maus_used <= target.maus_per_stage
            assert placement.sram_used <= target.sram_blocks_per_stage
            assert placement.tcam_used <= target.tcam_blocks_per_stage

    @settings(deadline=None, max_examples=40)
    @given(random_program())
    def test_dependencies_respected(self, program):
        try:
            allocation = Compiler(rmt_target()).allocate(program)
        except CompileError:
            return
        for spec in program.tables():
            for before, _ in program.dependencies(spec.name):
                assert allocation.stage_of(before) < allocation.stage_of(
                    spec.name
                )

    @settings(deadline=None, max_examples=40)
    @given(random_program())
    def test_every_replica_placed_exactly_once(self, program):
        try:
            allocation = Compiler(rmt_target()).allocate(program)
        except CompileError:
            return
        placed: dict[tuple[str, int], int] = {}
        for placement in allocation.placements:
            for instance in placement.instances:
                key = (instance.spec.name, instance.replica)
                placed[key] = placed.get(key, 0) + 1
        assert all(count == 1 for count in placed.values())
        for spec in program.tables():
            replicas = allocation.replication_factor(spec.name)
            assert replicas == spec.keys_per_packet  # scalar target
            for r in range(replicas):
                assert (spec.name, r) in placed

    @settings(deadline=None, max_examples=40)
    @given(random_program())
    def test_array_target_never_replicates(self, program):
        try:
            allocation = Compiler(adcp_target(array_width=16)).allocate(program)
        except CompileError:
            return
        for spec in program.tables():
            assert allocation.replication_factor(spec.name) == 1

    @settings(deadline=None, max_examples=30)
    @given(random_program())
    def test_array_target_memory_never_exceeds_scalar(self, program):
        """The ADCP allocation is never worse than RMT's in blocks."""
        try:
            scalar = Compiler(rmt_target()).allocate(program)
            array = Compiler(adcp_target(array_width=16)).allocate(program)
        except CompileError:
            return
        assert array.total_sram_blocks <= scalar.total_sram_blocks
        assert array.total_tcam_blocks <= scalar.total_tcam_blocks
