"""Tests for the §1 baseline switch designs (repro.baselines)."""

from __future__ import annotations

import pytest

from repro.apps import ParameterServerApp
from repro.arch.app import SwitchApp
from repro.arch.decision import Decision
from repro.baselines import (
    InstructionCostModel,
    RtcConfig,
    RunToCompletionSwitch,
    ThreadedSwitch,
    threaded_config,
)
from repro.errors import ConfigError
from repro.net.traffic import DeterministicSource, make_coflow_packet
from repro.units import GBPS


class TestInstructionCostModel:
    def test_packet_cycles_composition(self):
        cost = InstructionCostModel(
            parse_cycles=10, per_header_cycles=5, hook_base_cycles=20,
            per_element_cycles=3, emit_cycles=7, deparse_cycles=4,
        )
        packet = make_coflow_packet(1, 0, 0, [(1, 1), (2, 2)])  # 4 headers
        assert cost.packet_cycles(packet) == 10 + 20 + 20 + 6 + 4
        assert cost.packet_cycles(packet, emissions=2) == 60 + 14

    def test_sustained_pps(self):
        cost = InstructionCostModel()
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        pps = cost.sustained_pps(4, 1e9, packet)
        assert pps == pytest.approx(4e9 / cost.packet_cycles(packet))

    def test_validation(self):
        with pytest.raises(ConfigError):
            InstructionCostModel(parse_cycles=-1)
        cost = InstructionCostModel()
        with pytest.raises(ConfigError):
            cost.sustained_pps(0, 1e9, make_coflow_packet(1, 0, 0, [(1, 1)]))


class TestRtcConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RtcConfig(cores=0)
        with pytest.raises(ConfigError):
            RtcConfig(clock_hz=0)
        with pytest.raises(ConfigError):
            RtcConfig(num_ports=0)

    def test_throughput(self):
        config = RtcConfig(num_ports=8, port_speed_bps=100 * GBPS)
        assert config.throughput_bps == pytest.approx(800e9)


class TestRunToCompletion:
    def test_forwarding(self):
        switch = RunToCompletionSwitch(RtcConfig())
        packets = []
        for i in range(20):
            packet = make_coflow_packet(1, 0, i, [(i, i)])
            packet.meta.egress_port = 5
            packets.append(packet)
        source = DeterministicSource(0, 100 * GBPS, packets)
        result = switch.run(source.packets())
        assert result.delivered_count == 20

    def test_shared_memory_aggregation_with_wide_packets(self):
        """The expressiveness side: no scalar restriction, no placement
        constraint — the very things §1 says these designs buy."""
        app = ParameterServerApp([0, 1, 4, 5], 128, elements_per_packet=16)
        switch = RunToCompletionSwitch(RtcConfig(), app)
        result = switch.run(app.workload(100 * GBPS))
        assert app.collect_results(result.delivered) == app.expected_result()
        assert result.recirculated_packets == 0
        # Exactly one shared state namespace.
        assert app.placement_policy is not None
        assert app.placement_policy.partitions == 1

    def test_all_hooks_run_in_one_pass(self):
        calls = []

        class Probe(SwitchApp):
            def __init__(self):
                super().__init__("probe")

            def ingress(self, ctx, packet, phv):
                calls.append(("ingress", ctx.region))
                return Decision.forward()

            def central(self, ctx, packet, phv):
                calls.append(("central", ctx.region))
                return Decision.forward()

            def egress(self, ctx, packet, phv):
                calls.append(("egress", ctx.region))
                return Decision.forward()

        switch = RunToCompletionSwitch(RtcConfig(), Probe())
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        packet.meta.ingress_port = 0
        packet.meta.egress_port = 1
        switch.run([(0.0, packet)])
        assert calls == [
            ("ingress", "shared"), ("central", "shared"), ("egress", "shared")
        ]

    def test_service_rate_well_below_line_rate(self):
        """The performance side of the §1 tension."""
        switch = RunToCompletionSwitch(RtcConfig())
        sample = make_coflow_packet(1, 0, 0, [(1, 1)])
        assert switch.sustained_pps(sample) < 0.2 * switch.line_rate_pps()

    def test_saturation_stretches_completion(self):
        """Offered at line rate, the core pool falls behind: total drain
        time far exceeds the arrival window."""
        config = RtcConfig(cores=2)
        switch = RunToCompletionSwitch(config)
        packets = []
        for i in range(400):
            packet = make_coflow_packet(1, 0, i, [(i, i)])
            packet.meta.egress_port = 1
            packets.append(packet)
        source = DeterministicSource(0, 100 * GBPS, packets)
        arrivals = list(source.packets())
        window = arrivals[-1][0]
        result = switch.run(iter(arrivals))
        assert result.duration_s > 3 * window

    def test_queue_overflow_drops(self):
        config = RtcConfig(cores=1, queue_packets=4, clock_hz=1e6)
        switch = RunToCompletionSwitch(config)
        packets = []
        for i in range(50):
            packet = make_coflow_packet(1, 0, i, [(i, i)])
            packet.meta.egress_port = 1
            packets.append(packet)
        result = switch.run(DeterministicSource(0, 100 * GBPS, packets).packets())
        drops = [p for p in result.dropped if p.meta.drop_reason == "rtc_queue_full"]
        assert drops
        assert result.delivered_count + len(result.dropped) == 50

    def test_multicast(self):
        switch = RunToCompletionSwitch(RtcConfig())
        packet = make_coflow_packet(1, 0, 0, [(1, 1)])
        packet.meta.ingress_port = 0
        packet.meta.egress_ports = (1, 3, 5)
        result = switch.run([(0.0, packet)])
        assert sorted(p.meta.egress_port for p in result.delivered) == [1, 3, 5]

    def test_register_size_conflict(self):
        switch = RunToCompletionSwitch(RtcConfig())
        switch.get_register("r", 8)
        with pytest.raises(ConfigError):
            switch.get_register("r", 16)


class TestThreaded:
    def test_sits_between_software_and_line_rate(self):
        """'...compromises line rate, even if to a lesser extent.'"""
        sample = make_coflow_packet(1, 0, 0, [(1, 1)])
        software = RunToCompletionSwitch(RtcConfig())
        threaded = ThreadedSwitch()
        assert (
            software.sustained_pps(sample)
            < threaded.sustained_pps(sample)
            < threaded.line_rate_pps()
        )

    def test_same_programming_model(self):
        app = ParameterServerApp([0, 1], 64, elements_per_packet=16)
        switch = ThreadedSwitch(app=app)
        result = switch.run(app.workload(100 * GBPS))
        assert app.collect_results(result.delivered) == app.expected_result()

    def test_config_override(self):
        config = threaded_config(cores=32)
        assert ThreadedSwitch(config).config.cores == 32
