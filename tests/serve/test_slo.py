"""SLO objective parsing, evaluation, and roll-up verdicts."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.slo import SloObjective, SloPolicy


class TestObjectiveParse:
    @pytest.mark.parametrize(
        "text,metric,op,bound",
        [
            ("p99_latency_ns<=1500", "p99_latency_ns", "<=", 1500.0),
            ("throughput_pps>=2e9", "throughput_pps", ">=", 2e9),
            ("drop_rate<0.01", "drop_rate", "<", 0.01),
            ("tm_occupancy>3", "tm_occupancy", ">", 3.0),
            ("drop_rate <= 0.5", "drop_rate", "<=", 0.5),
        ],
    )
    def test_forms(self, text, metric, op, bound):
        objective = SloObjective.parse(text)
        assert (objective.metric, objective.op, objective.bound) == (
            metric,
            op,
            bound,
        )

    def test_two_char_operators_win(self):
        # "<=" must not parse as "<" with bound "=1500".
        assert SloObjective.parse("x<=1").op == "<="
        assert SloObjective.parse("x>=1").op == ">="

    @pytest.mark.parametrize(
        "text", ["p99", "p99=1500", "<=1500", "p99<=fast"]
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ConfigError, match="SLO"):
            SloObjective.parse(text)

    def test_spec_round_trips(self):
        objective = SloObjective.parse("drop_rate<=0.01")
        assert SloObjective.parse(objective.spec) == objective


class TestPolicy:
    def test_empty_policy_is_falsy_and_passes(self):
        policy = SloPolicy.parse([])
        assert not policy
        summary = policy.summarize([{"slo": {"compliant": True}}])
        assert summary["verdict"] == "pass"
        assert summary["objectives"] == []

    def test_evaluate_lists_violations(self):
        policy = SloPolicy.parse(["drop_rate<=0.01", "delivered>=5"])
        record = {"drop_rate": 0.5, "delivered": 10}
        assert policy.evaluate(record) == ["drop_rate<=0.01"]
        assert policy.evaluate({"drop_rate": 0.0, "delivered": 10}) == []

    def test_none_values_pass_vacuously(self):
        # An empty window has no p99; a latency SLO cannot fail on it.
        policy = SloPolicy.parse(["p99_latency_ns<=100"])
        assert policy.evaluate({"p99_latency_ns": None}) == []

    def test_validate_metrics_rejects_unknown(self):
        policy = SloPolicy.parse(["bogus<=1"])
        with pytest.raises(ConfigError, match="bogus"):
            policy.validate_metrics(["drop_rate", "delivered"])
        SloPolicy.parse(["drop_rate<=1"]).validate_metrics(["drop_rate"])

    def test_summarize_counts_by_objective(self):
        policy = SloPolicy.parse(["a<=1", "b<=1"])
        windows = [
            {"slo": {"compliant": False, "violations": ["a<=1"]}},
            {"slo": {"compliant": False, "violations": ["a<=1", "b<=1"]}},
            {"slo": {"compliant": True, "violations": []}},
        ]
        summary = policy.summarize(windows)
        assert summary["verdict"] == "fail"
        assert summary["windows"] == 3
        assert summary["compliant_windows"] == 1
        assert summary["compliance"] == pytest.approx(1 / 3)
        assert summary["violations_by_objective"] == {"a<=1": 2, "b<=1": 1}

    def test_all_compliant_passes(self):
        policy = SloPolicy.parse(["a<=1"])
        windows = [{"slo": {"compliant": True, "violations": []}}] * 4
        summary = policy.summarize(windows)
        assert summary["verdict"] == "pass"
        assert summary["compliance"] == 1.0

    def test_no_windows_is_vacuously_compliant(self):
        summary = SloPolicy.parse(["a<=1"]).summarize([])
        assert summary["compliance"] == 1.0
        assert summary["verdict"] == "pass"
