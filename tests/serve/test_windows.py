"""Tumbling-window monitor tests: boundaries, empty windows, deltas."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.windows import BASE_METRICS, RollingWindowMonitor

_NS = 1e-9


def _monitor(window_ns=100.0, **kwargs):
    return RollingWindowMonitor(window_ns, **kwargs)


class TestRegistration:
    def test_duplicate_metric_rejected(self):
        monitor = _monitor()
        monitor.gauge("depth", lambda t: 0.0)
        with pytest.raises(ConfigError, match="duplicate"):
            monitor.counter("depth", lambda t: 0.0)

    def test_base_metric_collision_rejected(self):
        monitor = _monitor()
        with pytest.raises(ConfigError, match="duplicate"):
            monitor.gauge("delivered", lambda t: 0.0)

    def test_registration_after_first_close_rejected(self):
        monitor = _monitor()
        monitor(150.0 * _NS)  # closes window 0
        with pytest.raises(ConfigError, match="first window closed"):
            monitor.gauge("late", lambda t: 0.0)
        with pytest.raises(ConfigError, match="first window closed"):
            monitor.set_drop_counter(lambda t: 0.0)

    def test_metric_names_cover_base_and_registered(self):
        monitor = _monitor()
        monitor.gauge("depth", lambda t: 0.0)
        monitor.counter("retries", lambda t: 0.0)
        names = monitor.metric_names()
        assert set(BASE_METRICS) <= set(names)
        assert "depth" in names and "retries" in names

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ConfigError, match="positive"):
            RollingWindowMonitor(0.0)


class TestBoundaries:
    def test_deadline_tracks_window_index(self):
        monitor = _monitor(100.0)
        assert monitor.next_deadline_s() == pytest.approx(100.0 * _NS)
        monitor(100.0 * _NS)
        assert monitor.next_deadline_s() == pytest.approx(200.0 * _NS)

    def test_advance_within_window_is_noop(self):
        monitor = _monitor(100.0)
        monitor(99.0 * _NS)
        assert monitor.records == []

    def test_boundary_tick_closes_exactly_one_window(self):
        monitor = _monitor(100.0)
        monitor(100.0 * _NS)
        assert [r["window"] for r in monitor.records] == [0]

    def test_boundary_delivery_lands_in_next_window(self):
        # The kernel probes *before* the boundary event executes, so a
        # delivery recorded at exactly t=window lands in window 1.
        monitor = _monitor(100.0)
        monitor(100.0 * _NS)  # probe fires first (window 0 closes empty)
        monitor.record_delivery(100.0 * _NS)
        monitor(200.0 * _NS)
        assert monitor.records[0]["delivered"] == 0
        assert monitor.records[1]["delivered"] == 1

    def test_large_advance_closes_every_crossed_window(self):
        monitor = _monitor(100.0)
        monitor.record_delivery(10.0 * _NS)
        monitor(350.0 * _NS)
        assert [r["window"] for r in monitor.records] == [0, 1, 2]
        assert [r["delivered"] for r in monitor.records] == [1, 0, 0]

    def test_window_stamps_are_exact_ns_multiples(self):
        monitor = _monitor(1_000.0)
        monitor(3_500.0 * _NS)
        assert [(r["start_ns"], r["end_ns"]) for r in monitor.records] == [
            (0.0, 1_000.0),
            (1_000.0, 2_000.0),
            (2_000.0, 3_000.0),
        ]

    def test_finish_emits_partial_window(self):
        monitor = _monitor(100.0)
        monitor(120.0 * _NS)  # probe precedes the event, closing window 0
        monitor.record_delivery(120.0 * _NS)
        monitor.finish(150.0 * _NS)
        assert [r["window"] for r in monitor.records] == [0, 1]
        assert monitor.records[1]["delivered"] == 1

    def test_finish_on_exact_boundary_adds_nothing(self):
        monitor = _monitor(100.0)
        monitor(200.0 * _NS)
        monitor.finish(200.0 * _NS)
        assert len(monitor.records) == 2


class TestRecords:
    def test_empty_window_has_none_latency_stats(self):
        monitor = _monitor(100.0)
        monitor.finish(100.0 * _NS)
        (record,) = monitor.records
        assert record["delivered"] == 0
        assert record["latency_samples"] == 0
        assert record["p50_latency_ns"] is None
        assert record["p99_latency_ns"] is None
        assert record["mean_latency_ns"] is None
        assert record["max_latency_ns"] is None
        assert record["mean_cct_ns"] is None
        assert record["drop_rate"] == 0.0

    def test_latency_percentiles(self):
        monitor = _monitor(100.0)
        for latency in (10.0, 20.0, 30.0, 40.0):
            monitor.record_delivery(50.0 * _NS, latency)
        monitor(100.0 * _NS)
        (record,) = monitor.records
        assert record["latency_samples"] == 4
        assert record["max_latency_ns"] == 40.0
        assert record["mean_latency_ns"] == pytest.approx(25.0)
        assert record["p50_latency_ns"] <= record["p99_latency_ns"]

    def test_offered_counts_respect_boundaries(self):
        monitor = _monitor(100.0)
        # Departure exactly on the boundary belongs to the next window
        # (strict <), matching delivery semantics.
        monitor.set_offered_schedule(
            [10.0 * _NS, 99.0 * _NS, 100.0 * _NS, 150.0 * _NS]
        )
        monitor(250.0 * _NS)
        offered = [r["offered"] for r in monitor.records]
        assert offered == [2, 2]

    def test_counter_records_deltas(self):
        total = {"value": 0.0}
        monitor = _monitor(100.0)
        monitor.counter("retries", lambda t: total["value"])
        total["value"] = 3.0
        monitor(100.0 * _NS)
        total["value"] = 7.0
        monitor(200.0 * _NS)
        assert [r["retries"] for r in monitor.records] == [3.0, 4.0]

    def test_drop_counter_feeds_drop_rate(self):
        total = {"value": 0.0}
        monitor = _monitor(100.0)
        monitor.set_drop_counter(lambda t: total["value"])
        monitor.record_delivery(10.0 * _NS)
        total["value"] = 1.0
        monitor(100.0 * _NS)
        (record,) = monitor.records
        assert record["dropped"] == 1.0
        assert record["drop_rate"] == pytest.approx(0.5)

    def test_gauges_sampled_at_close_time(self):
        seen = []
        monitor = _monitor(100.0)
        monitor.gauge("depth", lambda t: seen.append(t) or 42.0)
        monitor(100.0 * _NS)
        assert monitor.records[0]["depth"] == 42.0
        assert seen == [pytest.approx(100.0 * _NS)]

    def test_on_window_fires_in_order_with_final_record(self):
        closed = []
        monitor = _monitor(100.0, on_window=closed.append)
        monitor.record_delivery(10.0 * _NS)
        monitor(300.0 * _NS)
        assert [r["window"] for r in closed] == [0, 1, 2]
        assert closed[0]["delivered"] == 1

    def test_cct_stats(self):
        monitor = _monitor(100.0)
        monitor.record_cct(50.0 * _NS, 500.0)
        monitor.record_cct(60.0 * _NS, 300.0)
        monitor(100.0 * _NS)
        (record,) = monitor.records
        assert record["coflows_completed"] == 2
        assert record["mean_cct_ns"] == pytest.approx(400.0)
        assert record["max_cct_ns"] == 500.0
