"""Replay frontend tests: durations, rate profiles, schedule builds."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, SimulationError
from repro.fabric.runner import PORT_SPEED_BPS
from repro.fabric.topology import parse_topology
from repro.serve.replay import (
    RAMP_FLOOR,
    BurstPhase,
    RateProfile,
    build_schedule,
    parse_duration_ns,
)


def _schedule(rate=0.8, **overrides):
    kwargs = dict(
        profile=RateProfile(rate),
        arrivals="poisson",
        duration_ns=4_000.0,
        coflows=2,
        vector=64,
        elements_per_packet=16,
        link_bps=PORT_SPEED_BPS,
        seed=0,
    )
    kwargs.update(overrides)
    topo = parse_topology(overrides.pop("topology", "leaf-spine-2x2"))
    kwargs.pop("topology", None)
    return build_schedule("fabric-allreduce", topo, **kwargs)


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("500ns", 500.0),
            ("2us", 2_000.0),
            ("1.5us", 1_500.0),
            ("1ms", 1e6),
            ("0.001s", 1e6),
            ("250", 250.0),
        ],
    )
    def test_units(self, text, expected):
        assert parse_duration_ns(text) == expected

    @pytest.mark.parametrize("text", ["soon", "", "us", "--", "1h"])
    def test_rejects_garbage(self, text):
        with pytest.raises(ConfigError, match="duration"):
            parse_duration_ns(text)

    @pytest.mark.parametrize("text", ["0", "-5us", "0ns"])
    def test_rejects_nonpositive(self, text):
        with pytest.raises(ConfigError, match="positive"):
            parse_duration_ns(text)


class TestBurstPhase:
    def test_parse(self):
        burst = BurstPhase.parse("2.0@5us:8us")
        assert burst == BurstPhase(2.0, 5_000.0, 8_000.0)

    def test_parse_mixed_units(self):
        burst = BurstPhase.parse("1.5@500ns:2us")
        assert (burst.start_ns, burst.end_ns) == (500.0, 2_000.0)

    @pytest.mark.parametrize("text", ["2.0", "2.0@5us", "hot@1us:2us"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ConfigError, match="burst"):
            BurstPhase.parse(text)

    def test_rejects_empty_or_inverted_span(self):
        with pytest.raises(ConfigError):
            BurstPhase(2.0, 5_000.0, 5_000.0)
        with pytest.raises(ConfigError):
            BurstPhase(2.0, 8_000.0, 5_000.0)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigError):
            BurstPhase(0.0, 0.0, 1.0)


class TestRateProfile:
    def test_flat_profile(self):
        profile = RateProfile(0.5)
        assert profile.at(0.0) == 0.5
        assert profile.at(1e9) == 0.5

    def test_ramp_is_linear_with_floor(self):
        profile = RateProfile(1.0, ramp_ns=1_000.0)
        assert profile.at(0.0) == RAMP_FLOOR
        assert profile.at(500.0) == 0.5
        assert profile.at(1_000.0) == 1.0
        assert profile.at(2_000.0) == 1.0

    def test_burst_window_is_half_open(self):
        profile = RateProfile(
            0.5, bursts=(BurstPhase(2.0, 1_000.0, 2_000.0),)
        )
        assert profile.at(999.0) == 0.5
        assert profile.at(1_000.0) == 1.0
        assert profile.at(1_999.0) == 1.0
        assert profile.at(2_000.0) == 0.5

    def test_bursts_stack_multiplicatively(self):
        profile = RateProfile(
            0.5,
            bursts=(
                BurstPhase(2.0, 0.0, 100.0),
                BurstPhase(3.0, 50.0, 100.0),
            ),
        )
        assert profile.at(75.0) == pytest.approx(3.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            RateProfile(0.0)
        with pytest.raises(ConfigError):
            RateProfile(1.0, ramp_ns=-1.0)


class TestBuildSchedule:
    def test_deterministic_per_seed(self):
        first = _schedule(seed=3)
        second = _schedule(seed=3)
        assert first.departure_times_s == second.departure_times_s
        assert first.injected == second.injected
        assert first.rounds == second.rounds

    def test_seeds_diverge(self):
        assert (
            _schedule(seed=0).departure_times_s
            != _schedule(seed=1).departure_times_s
        )

    def test_periodic_gaps_are_constant(self):
        schedule = _schedule(arrivals="periodic", rate=0.5)
        for stream in schedule.arrivals.values():
            times = [t for t, _ in stream]
            gaps = {
                round(b - a, 15) for a, b in zip(times, times[1:])
            }
            # One wire-time-per-rate gap per packet size in the stream.
            assert len(gaps) <= 3

    def test_higher_rate_packs_more_packets(self):
        assert _schedule(rate=1.5).injected > _schedule(rate=0.4).injected

    def test_departures_sorted_and_within_horizon(self):
        schedule = _schedule()
        times = schedule.departure_times_s
        assert times == sorted(times)
        assert all(0.0 < t <= schedule.duration_s for t in times)

    def test_coflow_ids_unique_across_rounds(self):
        schedule = _schedule(rate=2.0)
        ids = [spec.coflow_id for spec in schedule.coflows]
        assert len(ids) == len(set(ids))
        assert schedule.rounds > 1

    def test_every_scheduled_coflow_has_first_departure(self):
        schedule = _schedule()
        for spec in schedule.coflows:
            assert spec.coflow_id in schedule.first_departure_s
        for key in schedule.expected:
            assert key[0] in schedule.first_departure_s

    def test_single_switch_topology(self):
        schedule = _schedule(topology="single-8")
        assert schedule.injected > 0

    def test_rejects_unknown_arrivals(self):
        with pytest.raises(ConfigError, match="arrival"):
            _schedule(arrivals="bursty")

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigError, match="positive"):
            _schedule(duration_ns=0.0)

    def test_round_cap_guards_runaway_generation(self, monkeypatch):
        # A profile needing unboundedly many rounds to reach the horizon
        # must fail loudly, not loop; shrink the cap to trigger cheaply.
        import repro.serve.replay as replay

        monkeypatch.setattr(replay, "MAX_ROUNDS", 8)
        with pytest.raises(SimulationError, match="8 workload rounds"):
            _schedule(rate=1e3, duration_ns=1_000.0)

    def test_vanishing_rate_schedules_nothing(self):
        # The horizon cuts every packet: an empty (but valid) schedule.
        schedule = _schedule(rate=1e-12, duration_ns=10.0)
        assert schedule.injected == 0
        assert schedule.coflows == []
