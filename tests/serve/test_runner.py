"""End-to-end serve runs: determinism, verdicts, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.errors import ConfigError
from repro.serve.runner import run_serve
from repro.telemetry.ledger import SERVE_LEDGER_SCHEMA, load_ledger

_FAST = dict(duration_ns=4_000.0, window_ns=500.0, rate=0.8)


def _ledger_bytes(**overrides):
    kwargs = dict(_FAST)
    kwargs.update(overrides)
    run = run_serve(
        kwargs.pop("topology", "leaf-spine-2x2"),
        kwargs.pop("workload", "fabric-allreduce"),
        **kwargs,
    )
    ledger = run.ledger()
    ledger["git_sha"] = None  # stamped at build time, not run content
    return json.dumps(ledger, sort_keys=True)


class TestDeterminism:
    def test_ledger_identical_across_repeats(self):
        assert _ledger_bytes(seed=2) == _ledger_bytes(seed=2)

    def test_ledger_identical_across_queue_backends(self):
        heap = _ledger_bytes(queue_backend="heap")
        calendar = _ledger_bytes(queue_backend="calendar")
        auto = _ledger_bytes(queue_backend="auto")
        assert heap == calendar == auto

    def test_rmt_ledger_identical_across_queue_backends(self):
        assert _ledger_bytes(
            target="rmt", queue_backend="heap"
        ) == _ledger_bytes(target="rmt", queue_backend="calendar")

    def test_seeds_produce_different_ledgers(self):
        assert _ledger_bytes(seed=0) != _ledger_bytes(seed=1)


class TestRunShape:
    @pytest.fixture(scope="class")
    def run(self):
        return run_serve(
            "leaf-spine-2x2",
            "fabric-allreduce",
            duration_ns=8_000.0,
            window_ns=500.0,
            rate=0.8,
            slos=["drop_rate<=0.5"],
        )

    def test_windows_cover_the_horizon(self, run):
        assert len(run.windows) >= 16  # at least duration/window
        assert [w["window"] for w in run.windows] == list(
            range(len(run.windows))
        )

    def test_every_window_carries_an_slo_verdict(self, run):
        for window in run.windows:
            assert set(window["slo"]) == {"compliant", "violations"}

    def test_switch_gauges_present(self, run):
        for window in run.windows:
            assert "tm_occupancy" in window
            assert "recirc_backlog_s" in window
            assert "recirculations" in window

    def test_latency_and_cct_observed(self, run):
        assert any(w["latency_samples"] > 0 for w in run.windows)
        assert run.coflows_completed > 0
        assert any(w["p99_latency_ns"] for w in run.windows)

    def test_totals_account_for_offered_load(self, run):
        totals = run.totals()
        assert totals["injected"] == sum(
            w["offered"] for w in run.windows
        )
        assert totals["delivered_to_hosts"] == sum(
            w["delivered"] for w in run.windows
        )
        assert 0 < totals["delivered_to_hosts"] <= totals["injected"]

    def test_ledger_schema_and_sections(self, run):
        ledger = run.ledger()
        assert ledger["schema"] == SERVE_LEDGER_SCHEMA
        labels = [s["label"] for s in ledger["sections"]]
        assert labels[0] == "serve"
        assert set(run.topology.switch_names) <= set(labels)
        serve = ledger["sections"][0]["series"]
        assert serve["throughput_pps"]["direction"] == "higher"
        assert serve["slo.compliance"]["direction"] == "higher"
        assert serve["tm_occupancy"]["direction"] == "lower"

    def test_exit_code_zero_when_compliant(self, run):
        assert run.slo["verdict"] == "pass"
        assert run.exit_code == 0


class TestVerdictsAndErrors:
    def test_exit_code_one_on_violation(self):
        run = run_serve(
            "leaf-spine-2x2",
            "fabric-allreduce",
            slos=["delivered>=1e9"],
            **_FAST,
        )
        assert run.slo["verdict"] == "fail"
        assert run.exit_code == 1

    def test_single_switch_topology_serves(self):
        run = run_serve("single-8", "fabric-allreduce", **_FAST)
        assert run.delivered_to_hosts > 0
        assert run.exit_code == 0

    def test_duration_must_cover_one_window(self):
        with pytest.raises(ConfigError, match="window"):
            run_serve(
                "leaf-spine-2x2",
                "fabric-allreduce",
                duration_ns=100.0,
                window_ns=500.0,
            )

    def test_unknown_slo_metric_fails_fast(self):
        with pytest.raises(ConfigError, match="bogus"):
            run_serve(
                "leaf-spine-2x2",
                "fabric-allreduce",
                slos=["bogus<=1"],
                **_FAST,
            )

    def test_on_window_streams_live(self):
        streamed = []
        run = run_serve(
            "leaf-spine-2x2",
            "fabric-allreduce",
            on_window=streamed.append,
            **_FAST,
        )
        assert streamed == run.windows


class TestServeCLI:
    ARGS = [
        "serve",
        "leaf-spine-2x2",
        "fabric-allreduce",
        "--duration",
        "6us",
        "--window",
        "500ns",
    ]

    def test_json_streams_windows_then_summary(self, capsys):
        assert main(["--json", *self.ARGS]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        windows = [r for r in records if r["type"] == "window"]
        assert len(windows) >= 10
        assert records[-1]["type"] == "summary"
        assert windows[0]["end_ns"] == 500.0

    def test_text_mode_prints_window_lines(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "window   0" in out
        assert "serve leaf-spine-2x2 [adcp]" in out

    def test_slo_violation_exits_one(self, capsys):
        assert main([*self.ARGS, "--slo", "delivered>=1e9"]) == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_ledger_and_stream_artifacts(self, tmp_path, capsys):
        ledger_path = tmp_path / "serve.json"
        stream_path = tmp_path / "serve.jsonl"
        assert (
            main(
                [
                    *self.ARGS,
                    "--ledger",
                    str(ledger_path),
                    "--stream",
                    str(stream_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        ledger = load_ledger(ledger_path)
        assert ledger["schema"] == SERVE_LEDGER_SCHEMA
        streamed = [
            json.loads(line)
            for line in stream_path.read_text().splitlines()
        ]
        assert len(streamed) == len(ledger["windows"])

    def test_self_diff_of_serve_ledger_passes(self, tmp_path, capsys):
        ledger_path = tmp_path / "serve.json"
        assert main([*self.ARGS, "--ledger", str(ledger_path)]) == 0
        capsys.readouterr()
        assert main(["diff", str(ledger_path), str(ledger_path)]) == 0
        capsys.readouterr()

    @pytest.mark.parametrize(
        "argv,fragment",
        [
            (["serve"], "serve takes a topology"),
            (["serve", "nowhere", "fabric-allreduce"], "topology"),
            (["serve", "leaf-spine-2x2", "bogus"], "workload"),
            (["serve", "leaf-spine-2x2", "fabric-allreduce",
              "--duration", "soon"], "duration"),
            (["serve", "leaf-spine-2x2", "fabric-allreduce",
              "--slo", "p99"], "SLO"),
            (["serve", "leaf-spine-2x2", "fabric-allreduce",
              "--burst", "2.0"], "burst"),
            (["serve", "leaf-spine-2x2", "fabric-allreduce",
              "--rate", "-1"], "rate"),
        ],
    )
    def test_usage_errors_exit_two(self, argv, fragment, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert fragment in err
