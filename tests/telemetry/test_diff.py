"""Run-ledger and ``repro diff`` tests: schema, verdicts, CLI exit codes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.errors import ConfigError
from repro.telemetry.ledger import (
    DEFAULT_THRESHOLD,
    LEDGER_SCHEMA,
    SERVE_LEDGER_SCHEMA,
    build_ledger,
    diff_ledgers,
    load_ledger,
    series_direction,
    write_ledger,
)
from repro.telemetry.runner import run_monitor


def _ledger(series, label="s", workload="w", attribution=None):
    """A minimal one-section ledger from {name: (mean, peak)}."""
    section = {
        "label": label,
        "series": {
            name: {"samples": 3, "mean": mean, "peak": peak, "p99": peak,
                   "last": mean}
            for name, (mean, peak) in series.items()
        },
    }
    if attribution is not None:
        section["attribution"] = attribution
    return build_ledger(workload=workload, interval_ns=50.0,
                        sections=[section])


class TestLedgerIO:
    def test_round_trip(self, tmp_path):
        ledger = _ledger({"a.x": (1.0, 2.0)})
        path = write_ledger(tmp_path / "l.json", ledger)
        assert load_ledger(path) == ledger
        assert ledger["schema"] == LEDGER_SCHEMA

    def test_written_json_is_deterministic(self, tmp_path):
        ledger = _ledger({"b": (1.0, 1.0), "a": (2.0, 2.0)})
        first = write_ledger(tmp_path / "1.json", ledger).read_bytes()
        second = write_ledger(tmp_path / "2.json", ledger).read_bytes()
        assert first == second

    def test_load_rejects_non_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json {")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_ledger(bad)

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "other.json"
        bad.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ConfigError, match="schema"):
            load_ledger(bad)


class TestVerdicts:
    def test_self_diff_all_unchanged(self):
        ledger = _ledger({"a.x": (1.0, 2.0), "a.y": (0.0, 0.0)})
        diff = diff_ledgers(ledger, ledger)
        assert not diff.has_regression
        assert diff.exit_code == 0
        assert diff.counts() == {"unchanged": 2}
        assert all(row.delta == 0.0 for row in diff.rows)

    def test_regression_past_threshold(self):
        base = _ledger({"tm.occupancy": (10.0, 20.0)})
        new = _ledger({"tm.occupancy": (11.0, 20.0)})
        diff = diff_ledgers(base, new, threshold=0.05)
        assert diff.exit_code == 1
        (row,) = diff.regressions
        assert row.series == "tm.occupancy"
        assert row.delta == pytest.approx(0.10)

    def test_improvement_past_threshold(self):
        base = _ledger({"tm.occupancy": (10.0, 20.0)})
        new = _ledger({"tm.occupancy": (8.0, 20.0)})
        diff = diff_ledgers(base, new)
        assert diff.exit_code == 0
        assert [row.series for row in diff.improvements] == ["tm.occupancy"]

    def test_within_threshold_is_unchanged(self):
        base = _ledger({"x": (100.0, 100.0)})
        new = _ledger({"x": (104.0, 100.0)})
        diff = diff_ledgers(base, new, threshold=0.05)
        assert diff.counts() == {"unchanged": 1}

    def test_pressure_appearing_from_zero_regresses(self):
        base = _ledger({"x": (0.0, 0.0)})
        new = _ledger({"x": (0.5, 1.0)})
        diff = diff_ledgers(base, new)
        assert diff.has_regression

    def test_added_and_removed_are_structural(self):
        base = _ledger({"x": (1.0, 1.0), "old": (5.0, 5.0)})
        new = _ledger({"x": (1.0, 1.0), "new": (5.0, 5.0)})
        diff = diff_ledgers(base, new)
        verdicts = {row.series: row.verdict for row in diff.rows}
        assert verdicts == {"x": "unchanged", "old": "removed",
                            "new": "added"}
        assert diff.exit_code == 0

    def test_attribution_latency_joins_the_verdict_table(self):
        attribution = {"packets": 10, "mean_latency_ns": 100.0}
        worse = {"packets": 10, "mean_latency_ns": 150.0}
        base = _ledger({"x": (1.0, 1.0)}, attribution=attribution)
        new = _ledger({"x": (1.0, 1.0)}, attribution=worse)
        diff = diff_ledgers(base, new)
        (row,) = diff.regressions
        assert row.series == "attribution.mean_latency_ns"

    def test_mismatched_sections_noted(self):
        base = _ledger({"x": (1.0, 1.0)}, label="adcp")
        new = _ledger({"x": (1.0, 1.0)}, label="rmt")
        diff = diff_ledgers(base, new)
        assert not diff.rows
        assert any("adcp" in note for note in diff.notes)
        assert any("rmt" in note for note in diff.notes)

    def test_negative_threshold_rejected(self):
        ledger = _ledger({"x": (1.0, 1.0)})
        with pytest.raises(ConfigError):
            diff_ledgers(ledger, ledger, threshold=-0.1)

    def test_default_threshold(self):
        assert DEFAULT_THRESHOLD == 0.05


class TestDirections:
    """Per-metric direction metadata: throughput-like series improve when
    they rise; everything else keeps the lower-is-better default."""

    def test_default_direction_is_lower(self):
        base = _ledger({"tm.occupancy": (10.0, 10.0)})
        new = _ledger({"tm.occupancy": (12.0, 12.0)})
        diff = diff_ledgers(base, new)
        (row,) = diff.regressions
        assert row.direction == "lower"

    def test_throughput_increase_improves(self):
        base = _ledger({"serve.throughput_pps": (10.0, 10.0)})
        new = _ledger({"serve.throughput_pps": (20.0, 20.0)})
        diff = diff_ledgers(base, new)
        assert diff.exit_code == 0
        (row,) = diff.improvements
        assert row.direction == "higher"

    def test_compliance_decrease_regresses(self):
        base = _ledger({"slo.compliance": (1.0, 1.0)})
        new = _ledger({"slo.compliance": (0.5, 0.5)})
        diff = diff_ledgers(base, new)
        assert diff.has_regression
        (row,) = diff.regressions
        assert row.series == "slo.compliance"
        assert row.direction == "higher"

    def test_explicit_direction_field_wins(self):
        # A series whose *name* says nothing: the summary's own
        # ``direction`` field must override the lower-is-better default.
        def tagged(mean):
            section = {
                "label": "s",
                "series": {
                    "app.score": {
                        "samples": 3, "mean": mean, "peak": mean,
                        "p99": mean, "last": mean, "direction": "higher",
                    }
                },
            }
            return build_ledger(workload="w", interval_ns=50.0,
                                sections=[section])

        diff = diff_ledgers(tagged(10.0), tagged(5.0))
        assert diff.has_regression
        (row,) = diff.regressions
        assert row.direction == "higher"

    def test_higher_series_appearing_from_zero_improves(self):
        base = _ledger({"serve.delivered": (0.0, 0.0)})
        new = _ledger({"serve.delivered": (5.0, 5.0)})
        diff = diff_ledgers(base, new)
        assert not diff.has_regression
        assert [row.series for row in diff.improvements] == [
            "serve.delivered"
        ]

    def test_series_direction_helper(self):
        assert series_direction("a.throughput_pps") == "higher"
        assert series_direction("slo.compliance") == "higher"
        assert series_direction("tm.occupancy") == "lower"
        assert series_direction("x", {"direction": "higher"}) == "higher"
        assert series_direction("x", {}, {"direction": "higher"}) == "higher"

    def test_direction_in_json_rows(self):
        base = _ledger({"serve.throughput_pps": (10.0, 10.0)})
        diff = diff_ledgers(base, base)
        payload = diff.to_json()
        (row,) = payload["rows"]
        assert row["direction"] == "higher"

    def test_serve_schema_loads_and_diffs(self, tmp_path):
        ledger = _ledger({"serve.delivered": (5.0, 5.0)})
        ledger["schema"] = SERVE_LEDGER_SCHEMA
        path = write_ledger(tmp_path / "serve.json", ledger)
        loaded = load_ledger(path)
        assert loaded["schema"] == SERVE_LEDGER_SCHEMA
        assert diff_ledgers(loaded, loaded).exit_code == 0


class TestCLI:
    def test_monitor_writes_valid_ledger(self, tmp_path, capsys):
        target = tmp_path / "ledger.json"
        assert main(["monitor", "recirculate", "--ledger",
                     str(target)]) == 0
        ledger = load_ledger(target)
        assert ledger["workload"] == "recirculate"
        (section,) = ledger["sections"]
        assert section["series"]
        assert section["samples"] > 0
        out = capsys.readouterr().out
        assert "monitor workload" in out

    def test_monitor_json_mode(self, tmp_path, capsys):
        target = tmp_path / "ledger.json"
        assert main(["--json", "monitor", "recirculate", "--ledger",
                     str(target)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ledger"]["schema"] == LEDGER_SCHEMA

    def test_self_diff_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ledger.json"
        run_monitor("recirculate", ledger_out=target)
        assert main(["diff", str(target), str(target)]) == 0
        out = capsys.readouterr().out
        assert "0 regressed" in out
        assert "unchanged" in out

    def test_diff_exits_one_on_regression(self, tmp_path, capsys):
        base = write_ledger(tmp_path / "base.json",
                            _ledger({"x": (10.0, 10.0)}))
        new = write_ledger(tmp_path / "new.json",
                           _ledger({"x": (20.0, 20.0)}))
        assert main(["diff", str(base), str(new)]) == 1
        assert "regressed" in capsys.readouterr().out

    def test_diff_threshold_flag_is_percent(self, tmp_path, capsys):
        base = write_ledger(tmp_path / "base.json",
                            _ledger({"x": (10.0, 10.0)}))
        new = write_ledger(tmp_path / "new.json",
                           _ledger({"x": (12.0, 12.0)}))
        assert main(["diff", str(base), str(new)]) == 1
        capsys.readouterr()
        assert main(["diff", str(base), str(new),
                     "--threshold", "25"]) == 0
        capsys.readouterr()

    def test_diff_json_mode(self, tmp_path, capsys):
        base = write_ledger(tmp_path / "l.json", _ledger({"x": (1.0, 1.0)}))
        assert main(["--json", "diff", str(base), str(base)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["has_regression"] is False

    def test_diff_wants_two_paths(self, tmp_path, capsys):
        base = write_ledger(tmp_path / "l.json", _ledger({"x": (1.0, 1.0)}))
        assert main(["diff", str(base)]) == 2
        assert "two ledger paths" in capsys.readouterr().err

    def test_monitor_bad_interval(self, capsys):
        assert main(["monitor", "recirculate", "--interval", "soon"]) == 2
        assert "--interval" in capsys.readouterr().err

    def test_unknown_monitor_workload(self, capsys):
        assert main(["monitor", "bogus"]) == 2
        assert "unknown monitor workload" in capsys.readouterr().err

    def test_help_lists_every_subcommand(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        for name in ("trace", "profile", "monitor", "diff"):
            assert f"python -m repro {name} " in out

    def test_unknown_subcommand_hints_registry(self, capsys):
        assert main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown artifact" in err
        assert (
            "subcommands: trace, profile, monitor, fabric, serve, spans, "
            "stateful, diff"
            in err
        )


class TestBaselineByteIdentity:
    """Regenerate the committed baseline ledgers and require byte-identity.

    These are the end-to-end anchors for the event-kernel rework: batched
    admission, lazy PHV parsing, and the calendar queue must leave every
    observable number in the run ledgers untouched.  The only permitted
    difference is ``git_sha`` (stamped at build time), which is pinned to
    the baseline's value before the byte comparison.
    """

    BASELINES = Path(__file__).resolve().parents[2] / "baselines"

    def _assert_byte_identical(self, tmp_path, baseline_name, ledger):
        baseline_path = self.BASELINES / baseline_name
        baseline = load_ledger(baseline_path)
        regen = dict(ledger)
        assert "git_sha" in regen
        regen["git_sha"] = baseline["git_sha"]
        rewritten = write_ledger(tmp_path / baseline_name, regen)
        assert rewritten.read_bytes() == baseline_path.read_bytes(), (
            f"{baseline_name} drifted from the committed baseline; if the "
            "change is intentional, regenerate the baseline and say why"
        )

    def test_mltrain_ledger_matches_baseline(self, tmp_path):
        result = run_monitor(
            "mltrain", ledger_out=tmp_path / "ledger_mltrain.json"
        )
        assert result.ledger_path is not None
        self._assert_byte_identical(
            tmp_path,
            "ledger_mltrain.json",
            load_ledger(result.ledger_path),
        )

    def test_fabric_leafspine_ledger_matches_baseline(self, tmp_path):
        from repro.fabric import run_fabric

        run = run_fabric("leaf-spine-2x2", "fabric-allreduce")
        self._assert_byte_identical(
            tmp_path, "ledger_fabric_leafspine.json", run.ledger()
        )

    def test_span_leafspine_ledger_matches_baseline(self, tmp_path):
        from repro.telemetry.runner import run_spans

        run = run_spans("leaf-spine-2x2", "fabric-allreduce", sample=8)
        self._assert_byte_identical(
            tmp_path, "span_ledger_leafspine.json", run.ledger
        )


class TestStatefulLedgerFamily:
    """``repro.stateful_ledger/1`` joins the diffable ledger family."""

    def test_load_ledger_accepts_stateful_schema(self, tmp_path):
        from repro.stateful.runner import run_stateful
        from repro.telemetry.ledger import STATEFUL_LEDGER_SCHEMA

        path = tmp_path / "stateful.json"
        run_stateful(
            "synflood", target="adcp", flows=32, packets=120,
            ledger_out=path,
        )
        document = load_ledger(path)
        assert document["schema"] == STATEFUL_LEDGER_SCHEMA

    def test_quality_metrics_direction_markers(self):
        for name in ("hit_rate", "detection_rate", "goodput_pps"):
            assert series_direction(name) == "higher"
        # Costs keep the default: lower is better.
        assert series_direction("stale_reads") == "lower"
        assert series_direction("false_positive_rate") == "lower"

    def test_detection_drop_regresses_in_diff(self):
        base = _ledger({"detection_rate": (1.0, 1.0)})
        new = _ledger({"detection_rate": (0.5, 0.5)})
        diff = diff_ledgers(base, new)
        assert diff.has_regression
        (row,) = diff.regressions
        assert row.series == "detection_rate"
        assert row.direction == "higher"

    def test_hit_rate_increase_improves(self):
        base = _ledger({"cache.hit_rate": (0.4, 0.4)})
        new = _ledger({"cache.hit_rate": (0.8, 0.8)})
        diff = diff_ledgers(base, new)
        assert not diff.has_regression
        assert [row.series for row in diff.improvements] == [
            "cache.hit_rate"
        ]

    def test_stateful_baseline_tokenbucket(self, tmp_path):
        from repro.stateful.runner import run_stateful

        run = run_stateful("tokenbucket")
        TestBaselineByteIdentity()._assert_byte_identical(
            tmp_path, "stateful_ledger_tokenbucket.json", run.ledger()
        )

    def test_stateful_baseline_synflood(self, tmp_path):
        from repro.stateful.runner import run_stateful

        run = run_stateful("synflood")
        TestBaselineByteIdentity()._assert_byte_identical(
            tmp_path, "stateful_ledger_synflood.json", run.ledger()
        )
