"""Tests for the Chrome trace and text exporters (repro.telemetry.exporters)."""

from __future__ import annotations

import json

import pytest

from repro.sim.stats import StatsRegistry
from repro.telemetry import (
    Category,
    MetricRegistry,
    TraceRecorder,
    chrome_trace_events,
    text_report,
    to_chrome_trace,
    write_chrome_trace,
)


def _recorder() -> TraceRecorder:
    rec = TraceRecorder()
    rec.emit(
        Category.PIPELINE,
        "pipeline.service",
        1e-9,
        component="rmt.ingress0",
        packet_id=7,
        duration_s=2e-9,
        verdict="forward",
    )
    rec.emit(
        Category.RECIRC,
        "packet.recirculated",
        5e-9,
        component="rmt",
        packet_id=7,
    )
    return rec


class TestChromeTrace:
    def test_span_event_shape(self):
        span = chrome_trace_events(_recorder())[0]
        assert span["ph"] == "X"
        assert span["name"] == "pipeline.service"
        assert span["pid"] == "rmt"
        assert span["tid"] == "ingress0"
        assert span["ts"] == pytest.approx(1e-3)  # 1 ns in µs
        assert span["dur"] == pytest.approx(2e-3)
        assert span["args"]["packet_id"] == 7
        assert span["args"]["verdict"] == "forward"

    def test_instant_event_shape(self):
        instant = chrome_trace_events(_recorder())[1]
        assert instant["ph"] == "i"
        assert instant["s"] == "t"
        assert "dur" not in instant

    def test_pid_override(self):
        events = chrome_trace_events(_recorder(), pid="combined")
        assert {e["pid"] for e in events} == {"combined"}

    def test_counter_tracks_from_metrics(self):
        stats = StatsRegistry()
        stats.counter("rmt.delivered").add(3)
        metrics = MetricRegistry(stats)
        metrics.sample(1e-9)
        counters = [
            e
            for e in chrome_trace_events(TraceRecorder(), metrics)
            if e["ph"] == "C"
        ]
        assert len(counters) == 1
        assert counters[0]["name"] == "rmt.delivered"
        assert counters[0]["args"]["value"] == 3.0

    def test_document_envelope(self):
        doc = to_chrome_trace(_recorder())
        assert doc["displayTimeUnit"] == "ns"
        assert len(doc["traceEvents"]) == 2

    def test_write_round_trips(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "t.json", to_chrome_trace(_recorder())
        )
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == 2

    def test_write_wraps_bare_list(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "t.json", chrome_trace_events(_recorder())
        )
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded


class TestTextReport:
    def test_report_mentions_counts(self):
        text = "\n".join(text_report(_recorder(), title="unit"))
        assert "unit" in text
        assert "pipeline.service" in text
        assert "2 emitted" in text

    def test_report_includes_latest_snapshot(self):
        metrics = MetricRegistry(StatsRegistry())
        metrics.gauge("sw.occupancy", lambda now: 4.0)
        metrics.sample(1e-9)
        text = "\n".join(text_report(TraceRecorder(), metrics))
        assert "snapshots: 1" in text
        assert "sw.occupancy" in text
