"""Integration tests: telemetry wired into full switch runs."""

from __future__ import annotations

import json

import pytest

from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp, SortMergeJoinApp
from repro.errors import ConfigError
from repro.rmt.switch import RMTSwitch
from repro.telemetry import Category, Telemetry


def _run_rmt(config, telemetry=None):
    app = ParameterServerApp([0, 1, 4, 5], 64, elements_per_packet=1)
    switch = RMTSwitch(config, app, telemetry=telemetry)
    return switch.run(app.workload(config.port_speed_bps))


def _run_adcp(config, telemetry=None):
    app = ParameterServerApp([0, 1, 4, 5], 64, elements_per_packet=16)
    switch = ADCPSwitch(config, app, telemetry=telemetry)
    return switch.run(app.workload(config.port_speed_bps))


def _normalized(result):
    """Run outcome with globally-monotonic packet ids rebased to zero."""
    ids = [p.packet_id for p in result.delivered]
    base = min(ids) if ids else 0
    return (
        [i - base for i in ids],
        result.duration_s,
        result.recirculated_packets,
        result.consumed,
    )


class TestBinding:
    def test_hub_serves_one_switch(self, small_rmt_config):
        telemetry = Telemetry()
        RMTSwitch(small_rmt_config, telemetry=telemetry)
        with pytest.raises(ConfigError):
            RMTSwitch(small_rmt_config, telemetry=telemetry)

    def test_gauges_registered_per_component(self, small_adcp_config):
        telemetry = Telemetry()
        switch = ADCPSwitch(small_adcp_config, telemetry=telemetry)
        names = telemetry.metrics.gauge_names
        assert f"{switch.tm1.path}.occupancy" in names
        assert any(name.endswith(".utilization") for name in names)
        assert telemetry.switch is switch

    def test_disabled_recorder_skips_trace_wiring(self, small_rmt_config):
        """A hub whose recorder is off at construction leaves every
        component on the ``trace is None`` fast path, but metrics and the
        final snapshot still work."""
        telemetry = Telemetry()
        telemetry.trace.disable()
        result = _run_rmt(small_rmt_config, telemetry)
        assert telemetry.trace.emitted == 0
        assert telemetry.trace.filtered == 0  # sites never reached emit()
        assert telemetry.metrics.series  # finish() snapshot still taken
        assert telemetry.metrics.latest("rmt.delivered") == len(
            result.delivered
        )

    def test_merge_depth_gauge_with_ordered_flows(self, small_adcp_config):
        app = SortMergeJoinApp(left_port=0, right_port=1, output_port=7)
        telemetry = Telemetry()
        switch = ADCPSwitch(
            small_adcp_config,
            app,
            ordered_flows=app.ordered_flows(),
            telemetry=telemetry,
        )
        assert f"{switch.tm1.path}.merge_depth" in telemetry.metrics.gauge_names


class TestRunConsistency:
    def test_rmt_trace_matches_counters(self, small_rmt_config):
        telemetry = Telemetry()
        result = _run_rmt(small_rmt_config, telemetry)
        trace = telemetry.trace
        assert trace.count(name="packet.delivered") == len(result.delivered)
        assert (
            trace.count(category=Category.RECIRC)
            == result.recirculated_packets
        )
        assert trace.overwritten == 0

    def test_adcp_trace_matches_counters(self, small_adcp_config):
        telemetry = Telemetry()
        result = _run_adcp(small_adcp_config, telemetry)
        trace = telemetry.trace
        assert trace.count(name="packet.delivered") == len(result.delivered)
        assert trace.count(name="packet.consumed") == result.consumed
        assert trace.count(name="tm1.place") > 0

    def test_final_snapshot_taken_on_finish(self, small_adcp_config):
        telemetry = Telemetry()
        result = _run_adcp(small_adcp_config, telemetry)
        assert telemetry.metrics.series
        final = telemetry.metrics.series[-1]
        assert final.time_s == pytest.approx(result.duration_s)
        assert final.value("adcp.delivered") == len(result.delivered)

    def test_periodic_snapshots_on_grid(self, small_rmt_config):
        telemetry = Telemetry(snapshot_interval_s=1e-8)
        result = _run_rmt(small_rmt_config, telemetry)
        periodic = telemetry.metrics.series[:-1]  # last one is finish()
        assert periodic
        for i, snapshot in enumerate(periodic, start=1):
            assert snapshot.time_s == pytest.approx(i * 1e-8)
        assert periodic[-1].time_s <= result.duration_s


class TestNonPerturbation:
    def test_rmt_results_identical_with_and_without(self, small_rmt_config):
        plain = _normalized(_run_rmt(small_rmt_config))
        traced = _normalized(
            _run_rmt(
                small_rmt_config, Telemetry(snapshot_interval_s=1e-8)
            )
        )
        assert plain == traced

    def test_adcp_results_identical_with_and_without(self, small_adcp_config):
        plain = _normalized(_run_adcp(small_adcp_config))
        traced = _normalized(
            _run_adcp(
                small_adcp_config, Telemetry(snapshot_interval_s=1e-8)
            )
        )
        assert plain == traced

    def test_seeded_event_stream_reproduces(self, small_rmt_config):
        streams = []
        for _ in range(2):
            telemetry = Telemetry()
            _run_rmt(small_rmt_config, telemetry)
            streams.append(
                [
                    (e.seq, e.name, e.component, round(e.time_s, 15))
                    for e in telemetry.trace
                ]
            )
        assert streams[0] == streams[1]


class TestRunner:
    def test_run_trace_writes_valid_chrome_json(self, tmp_path):
        from repro.telemetry.runner import run_trace

        out = tmp_path / "trace.json"
        run = run_trace("mergejoin", out=out)
        assert run.path == out
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases <= {"X", "i", "C"}
        summary = run.summary()
        assert summary["workload"] == "mergejoin"
        assert summary["sections"][0]["events_emitted"] > 0

    def test_run_trace_unknown_workload(self):
        from repro.telemetry.runner import run_trace

        with pytest.raises(ConfigError, match="unknown trace workload"):
            run_trace("bogus")
