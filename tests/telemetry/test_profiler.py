"""Latency-attribution conservation: every nanosecond accounted, exactly.

The profiler's contract is *bit-exact* conservation: for every packet
that reached a terminal state, the per-component attribution sums to the
end-to-end latency with zero residual — not within an epsilon, exactly
0.0 — and the per-bucket histogram counts line up with the number of
delivered plus consumed packets.
"""

from __future__ import annotations

import pytest

from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp
from repro.errors import SimulationError
from repro.profiling import (
    BUCKETS,
    QUEUE_BUCKETS,
    RunProfile,
    profile_chrome_events,
    profile_run,
)
from repro.rmt.config import RMTConfig, StateMode
from repro.rmt.switch import RMTSwitch
from repro.telemetry import Telemetry
from repro.units import GBPS

WORKERS = [0, 1, 4, 5]


def _profiled_rmt(config, params=64):
    telemetry = Telemetry(capacity=1 << 20, snapshot_interval_s=5e-8)
    app = ParameterServerApp(WORKERS, params, elements_per_packet=1)
    switch = RMTSwitch(config, app, telemetry=telemetry)
    result = switch.run(app.workload(config.port_speed_bps))
    return profile_run(telemetry.trace, label="rmt"), result, telemetry


def _profiled_adcp(config, params=64):
    telemetry = Telemetry(capacity=1 << 20, snapshot_interval_s=5e-8)
    app = ParameterServerApp(WORKERS, params, elements_per_packet=16)
    switch = ADCPSwitch(config, app, telemetry=telemetry)
    result = switch.run(app.workload(config.port_speed_bps))
    return profile_run(telemetry.trace, label="adcp"), result, telemetry


def _recirculating_config() -> RMTConfig:
    return RMTConfig(
        num_ports=8,
        pipelines=2,
        port_speed_bps=100 * GBPS,
        min_wire_packet_bytes=84.0,
        frequency_hz=1.25e9,
        state_mode=StateMode.RECIRCULATE,
    )


def _assert_exact_conservation(run: RunProfile) -> None:
    for profile in run.packets.values():
        assert profile.unattributed_s == 0.0, (
            f"packet {profile.packet_id} leaked "
            f"{profile.unattributed_s * 1e9} ns"
        )
        # The float components re-sum to the latency within one ulp-ish
        # tolerance (the exact check is the Fraction residual above).
        total = sum(profile.components.values())
        assert total == pytest.approx(profile.latency_s, rel=1e-12, abs=0.0)
        # Segment tiling: contiguous, ordered, covering [origin, end].
        assert profile.segments[0].start_s == profile.origin_s
        assert profile.segments[-1].end_s == profile.end_s
        for left, right in zip(profile.segments, profile.segments[1:]):
            assert left.end_s == right.start_s


class TestConservationRMT:
    def test_egress_pin_run_is_fully_attributed(self, small_rmt_config):
        run, result, _ = _profiled_rmt(small_rmt_config)
        assert run.profiled > 0
        _assert_exact_conservation(run)

    def test_recirculate_run_is_fully_attributed(self):
        run, result, _ = _profiled_rmt(_recirculating_config())
        assert result.recirculated_packets > 0
        assert run.bucket_total_s("recirculation") > 0.0
        _assert_exact_conservation(run)

    def test_profiled_count_matches_terminals(self, small_rmt_config):
        run, result, telemetry = _profiled_rmt(small_rmt_config)
        consumed_events = telemetry.trace.count(name="packet.consumed")
        assert run.count("delivered") == len(result.delivered)
        assert run.count("consumed") == consumed_events
        assert run.profiled == len(result.delivered) + consumed_events
        # The latency histogram sees every profiled packet once.
        assert run.latency.count == run.profiled

    def test_bucket_histogram_counts_bounded_by_profiled(
        self, small_rmt_config
    ):
        run, _, _ = _profiled_rmt(small_rmt_config)
        for bucket in BUCKETS:
            assert run.histograms[bucket].count <= run.profiled
        # Every delivered packet serialized out of a TX port.
        assert (
            run.histograms["egress_serial"].count >= run.count("delivered")
        )

    def test_bucket_means_sum_to_mean_latency(self, small_rmt_config):
        run, _, _ = _profiled_rmt(small_rmt_config)
        total = sum(run.bucket_mean_s(bucket) for bucket in BUCKETS)
        assert total == pytest.approx(run.mean_latency_s, rel=1e-9)


class TestConservationADCP:
    def test_run_is_fully_attributed(self, small_adcp_config):
        run, result, _ = _profiled_adcp(small_adcp_config)
        assert run.profiled > 0
        assert run.count("delivered") == len(result.delivered)
        _assert_exact_conservation(run)

    def test_adcp_never_recirculates(self, small_adcp_config):
        run, result, _ = _profiled_adcp(small_adcp_config)
        assert result.recirculated_packets == 0
        assert run.bucket_total_s("recirculation") == 0.0
        assert run.histograms["recirculation"].count == 0

    def test_queue_buckets_are_the_wait_buckets(self):
        assert QUEUE_BUCKETS <= set(BUCKETS)
        assert "tm_service" not in QUEUE_BUCKETS
        assert "match_action" not in QUEUE_BUCKETS


class TestReplicationLineage:
    def test_multicast_copies_inherit_parent_journey(self, small_rmt_config):
        """Delivered multicast copies extend back through the replication
        parent, so the parent's recirculation detour shows up in the
        copies' attribution (the EGRESS_PIN result-delivery path)."""
        run, result, telemetry = _profiled_rmt(small_rmt_config)
        assert result.recirculated_packets > 0
        replicated = telemetry.trace.count(name="packet.replicated")
        assert replicated > 0
        assert run.bucket_total_s("recirculation") > 0.0
        with_recirc = [
            p for p in run.packets.values() if p.recirculations > 0
        ]
        assert with_recirc
        _assert_exact_conservation(run)


class TestRunProfileShape:
    def test_to_json_digest(self, small_adcp_config):
        run, _, _ = _profiled_adcp(small_adcp_config)
        digest = run.to_json()
        assert digest["label"] == "adcp"
        assert digest["profiled_packets"] == run.profiled
        assert set(digest["buckets"]) == set(BUCKETS)
        shares = sum(b["share"] for b in digest["buckets"].values())
        assert shares == pytest.approx(1.0, rel=1e-9)

    def test_chrome_events_cover_segments(self, small_adcp_config):
        run, _, _ = _profiled_adcp(small_adcp_config)
        events = profile_chrome_events(run)
        segments = sum(len(p.segments) for p in run.packets.values())
        assert len(events) == segments
        assert all(e["ph"] == "X" for e in events)
        assert {e["tid"] for e in events} <= set(BUCKETS)

    def test_overwritten_ring_is_rejected(self, small_rmt_config):
        telemetry = Telemetry(capacity=16)  # tiny ring: guaranteed wrap
        app = ParameterServerApp(WORKERS, 64, elements_per_packet=1)
        switch = RMTSwitch(small_rmt_config, app, telemetry=telemetry)
        switch.run(app.workload(small_rmt_config.port_speed_bps))
        assert telemetry.trace.overwritten > 0
        with pytest.raises(SimulationError):
            profile_run(telemetry.trace)
