"""Bottleneck analysis and gap attribution (repro.telemetry.attribution).

The acceptance questions, answered empirically:

- on the Table-1 ML-training workload the RMT-vs-ADCP mean-latency gap
  is majority-attributed to recirculation plus TM queue-wait, with the
  ADCP side recording exactly zero recirculation time;
- the top-k critical-component ranking fingers the recirculation path's
  traffic manager on RMT coflow runs and the central-bank lanes on
  small ADCP configurations;
- the Little's-law cross-check agrees with the sampled occupancy gauge
  on the recirculate workload.
"""

from __future__ import annotations

import math

import pytest

from repro.adcp.config import ADCPConfig
from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp
from repro.errors import SimulationError
from repro.profiling import (
    AttributionTable,
    BUCKETS,
    LittlesLawCheck,
    RunProfile,
    analyze_bottlenecks,
    attribution_gap,
    profile_run,
)
from repro.telemetry import Telemetry
from repro.telemetry.runner import run_profile
from repro.units import GBPS


@pytest.fixture(scope="module")
def mltrain():
    """The Table-1 ML-training pair, profiled (ADCP + RMT sections)."""
    return run_profile("mltrain")


@pytest.fixture(scope="module")
def recirculate():
    """The recirculating-RMT workload, profiled (one section)."""
    return run_profile("recirculate")


def _section(run, label):
    return next(s for s in run.sections if s.label == label)


class TestTable1Gap:
    def test_rmt_is_the_slow_section(self, mltrain):
        assert mltrain.gap is not None
        assert mltrain.gap_labels == ("rmt", "adcp")

    def test_gap_shares_sum_to_one(self, mltrain):
        # Each run's bucket means sum to its mean latency (conservation),
        # so the per-bucket gap shares telescope to exactly the gap.
        assert sum(mltrain.gap.values()) == pytest.approx(1.0, rel=1e-9)

    def test_gap_majority_is_recirculation_plus_tm_queue(self, mltrain):
        blamed = mltrain.gap["recirculation"] + mltrain.gap["tm_queue"]
        assert blamed > 0.5
        assert mltrain.gap["recirculation"] > 0.0

    def test_adcp_records_zero_recirculation(self, mltrain):
        adcp = _section(mltrain, "adcp").profile
        assert adcp.bucket_total_s("recirculation") == 0.0
        assert adcp.histograms["recirculation"].count == 0

    def test_rmt_critical_path_is_the_traffic_manager(self, mltrain):
        report = _section(mltrain, "rmt").report
        top = report.critical[0]
        assert top.component == "rmt.tm"
        assert top.share > 0.5
        assert top.queue_share > 0.9  # the TM's time is queue-wait
        assert report.queue_delay_share > 0.5


class TestSmallADCPCentralBank:
    def test_top_component_is_a_central_lane(self):
        """On a small ADCP config the slow central bank tops the ranking
        (the EXPERIMENTS.md Table-1 nuance: tiny configs pay for the
        central crossing)."""
        telemetry = Telemetry(capacity=1 << 20, snapshot_interval_s=5e-8)
        config = ADCPConfig(
            num_ports=4, port_speed_bps=100 * GBPS, demux_factor=2,
            central_pipelines=2,
        )
        app = ParameterServerApp([0, 1, 2, 3], 64, elements_per_packet=16)
        switch = ADCPSwitch(config, app, telemetry=telemetry)
        result = switch.run(app.workload(config.port_speed_bps))
        profile = profile_run(telemetry.trace, label="adcp-small")
        report = analyze_bottlenecks(
            profile, telemetry.trace, telemetry.metrics,
            duration_s=result.duration_s,
        )
        assert report.critical[0].component.startswith("adcp.central")
        # The lane's utilization gauge rode along into the ranking entry.
        assert report.critical[0].utilization is not None
        assert report.critical[0].utilization > 0.0


class TestLittlesLaw:
    def test_recirculate_tm_is_consistent(self, recirculate):
        report = _section(recirculate, "rmt-recirculate").report
        checks = {c.component: c for c in report.littles}
        assert "rmt.tm" in checks
        check = checks["rmt.tm"]
        assert check.consistent
        assert check.predicted_occupancy == pytest.approx(
            check.arrival_rate_pps * check.mean_residency_s
        )
        assert check.arrival_rate_pps > 0.0

    def test_ratio_of_empty_system_is_one(self):
        check = LittlesLawCheck(
            component="tm", arrival_rate_pps=0.0, mean_residency_s=0.0,
            predicted_occupancy=0.0, observed_occupancy=0.0, tolerance=2.0,
        )
        assert check.ratio == 1.0
        assert check.consistent

    def test_observed_without_predicted_is_inconsistent(self):
        check = LittlesLawCheck(
            component="tm", arrival_rate_pps=0.0, mean_residency_s=0.0,
            predicted_occupancy=0.0, observed_occupancy=1.5, tolerance=2.0,
        )
        assert check.ratio == math.inf
        assert not check.consistent

    def test_tolerance_bounds_both_sides(self):
        kwargs = dict(
            component="tm", arrival_rate_pps=1.0, mean_residency_s=1.0,
            tolerance=2.0,
        )
        low = LittlesLawCheck(
            predicted_occupancy=1.0, observed_occupancy=0.4, **kwargs
        )
        high = LittlesLawCheck(
            predicted_occupancy=1.0, observed_occupancy=2.5, **kwargs
        )
        ok = LittlesLawCheck(
            predicted_occupancy=1.0, observed_occupancy=1.3, **kwargs
        )
        assert not low.consistent
        assert not high.consistent
        assert ok.consistent


class TestAttributionTable:
    def test_requires_at_least_one_profile(self):
        with pytest.raises(SimulationError):
            AttributionTable()

    def test_merges_sections_like_one_run(self, mltrain):
        profiles = [s.profile for s in mltrain.sections]
        table = AttributionTable(*profiles)
        assert table.latency.count == sum(p.profiled for p in profiles)
        # Conservation survives the merge: bucket totals sum to latency.
        bucket_total = sum(
            table.histograms[bucket].total for bucket in BUCKETS
        )
        assert bucket_total == pytest.approx(
            table.latency.total, rel=1e-9
        )
        shares = sum(row.share for row in table.rows())
        assert shares == pytest.approx(1.0, rel=1e-9)

    def test_lines_render_every_bucket(self, mltrain):
        table = AttributionTable(_section(mltrain, "rmt").profile)
        text = "\n".join(table.lines(title="rmt"))
        for bucket in BUCKETS:
            assert bucket in text

    def test_empty_profile_renders_placeholder(self):
        table = AttributionTable(RunProfile("empty"))
        lines = table.lines(title="empty")
        assert lines == [
            "latency attribution — empty (no profiled packets)"
        ]
        assert table.to_json()["mean_latency_ns"] == 0.0


class TestAttributionGap:
    def test_rejects_a_slow_run_that_is_not_slower(self, mltrain):
        rmt = _section(mltrain, "rmt").profile
        adcp = _section(mltrain, "adcp").profile
        with pytest.raises(SimulationError, match="not slower"):
            attribution_gap(adcp, rmt)  # arguments swapped
