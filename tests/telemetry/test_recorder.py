"""Tests for the bounded trace recorder (repro.telemetry.recorder)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.telemetry import (
    DEFAULT_CATEGORIES,
    VERBOSE_CATEGORIES,
    Category,
    Severity,
    TraceRecorder,
)


class TestEmission:
    def test_emit_returns_event_with_sequence(self):
        rec = TraceRecorder()
        first = rec.emit(Category.PACKET, "a", 1.0)
        second = rec.emit(Category.PACKET, "b", 2.0)
        assert first.seq == 0 and second.seq == 1
        assert [e.name for e in rec] == ["a", "b"]

    def test_kwargs_become_args(self):
        rec = TraceRecorder()
        event = rec.emit(Category.TM, "tm.admit", 0.0, occupancy=3, pipeline=1)
        assert event.args == {"occupancy": 3, "pipeline": 1}

    def test_packet_and_duration_fields(self):
        rec = TraceRecorder()
        event = rec.emit(
            Category.PIPELINE, "svc", 1.0, packet_id=42, duration_s=0.5
        )
        assert event.packet_id == 42
        assert event.duration_s == 0.5
        assert event.end_time_s == pytest.approx(1.5)

    def test_counts(self):
        rec = TraceRecorder()
        for _ in range(3):
            rec.emit(Category.PACKET, "x", 0.0)
        rec.emit(Category.PACKET, "y", 0.0)
        assert rec.count(name="x") == 3
        assert rec.count() == 4
        assert rec.counts_by_name() == {"x": 3, "y": 1}


class TestRing:
    def test_capacity_bounds_retention(self):
        rec = TraceRecorder(capacity=4)
        for i in range(10):
            rec.emit(Category.PACKET, f"e{i}", float(i))
        assert len(rec) == 4
        assert rec.emitted == 10
        assert rec.overwritten == 6
        assert [e.name for e in rec] == ["e6", "e7", "e8", "e9"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigError):
            TraceRecorder(capacity=0)

    def test_clear_keeps_counters(self):
        rec = TraceRecorder()
        rec.emit(Category.PACKET, "x", 0.0)
        rec.clear()
        assert len(rec) == 0
        assert rec.emitted == 1
        next_event = rec.emit(Category.PACKET, "y", 0.0)
        assert next_event.seq == 1  # sequence keeps running


class TestFilters:
    def test_default_excludes_verbose_categories(self):
        rec = TraceRecorder()
        assert rec.categories == DEFAULT_CATEGORIES
        for category in VERBOSE_CATEGORIES:
            assert rec.emit(category, "noise", 0.0) is None
        assert rec.filtered == len(VERBOSE_CATEGORIES)
        assert len(rec) == 0

    def test_explicit_categories(self):
        rec = TraceRecorder(categories={Category.STAGE})
        assert rec.emit(Category.STAGE, "stage", 0.0) is not None
        assert rec.emit(Category.PACKET, "pkt", 0.0) is None

    def test_min_severity(self):
        rec = TraceRecorder(min_severity=Severity.WARNING)
        assert rec.emit(Category.PACKET, "info", 0.0) is None
        assert (
            rec.emit(
                Category.PACKET, "warn", 0.0, severity=Severity.WARNING
            )
            is not None
        )

    def test_disable_enable(self):
        rec = TraceRecorder()
        rec.disable()
        assert rec.emit(Category.PACKET, "x", 0.0) is None
        rec.enable()
        assert rec.emit(Category.PACKET, "x", 0.0) is not None

    def test_wants_mirrors_emit(self):
        rec = TraceRecorder(
            categories={Category.PACKET}, min_severity=Severity.INFO
        )
        assert rec.wants(Category.PACKET)
        assert not rec.wants(Category.STAGE)
        assert not rec.wants(Category.PACKET, Severity.DEBUG)

    def test_events_query_filters(self):
        rec = TraceRecorder()
        rec.emit(Category.PACKET, "a", 0.0)
        rec.emit(Category.TM, "b", 0.0, severity=Severity.WARNING)
        assert [e.name for e in rec.events(category=Category.TM)] == ["b"]
        assert [
            e.name for e in rec.events(min_severity=Severity.WARNING)
        ] == ["b"]
