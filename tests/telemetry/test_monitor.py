"""Resource-monitor tests: grid sampling, probe wiring, determinism."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.adcp.switch import ADCPSwitch
from repro.apps import ParameterServerApp
from repro.errors import ConfigError
from repro.rmt.config import StateMode
from repro.rmt.switch import RMTSwitch
from repro.sim.event import Simulator
from repro.telemetry import (
    ResourceMonitor,
    Telemetry,
    merged_chrome_events,
    monitor_littles_checks,
)
from repro.telemetry.runner import run_monitor


def _monitored_rmt(config, interval_ns=50.0, **app_kwargs):
    monitor = ResourceMonitor(interval_ns=interval_ns)
    telemetry = Telemetry(monitor=monitor)
    app = ParameterServerApp(
        [0, 1, 4, 5], app_kwargs.pop("rounds", 64), elements_per_packet=1
    )
    switch = RMTSwitch(config, app, telemetry=telemetry)
    result = switch.run(app.workload(config.port_speed_bps))
    return monitor, switch, result


def _monitored_adcp(config, interval_ns=50.0):
    monitor = ResourceMonitor(interval_ns=interval_ns)
    telemetry = Telemetry(monitor=monitor)
    app = ParameterServerApp([0, 1, 4, 5], 64, elements_per_packet=16)
    switch = ADCPSwitch(config, app, telemetry=telemetry)
    result = switch.run(app.workload(config.port_speed_bps))
    return monitor, switch, result


class TestGridSampling:
    def test_samples_land_on_fixed_grid(self):
        """One sample per crossed boundary, at exactly the grid times."""
        monitor = ResourceMonitor(interval_ns=10.0)
        ticks = []
        monitor.probe("x", lambda now_s: float(len(ticks)))
        monitor(5e-9)  # before first boundary: nothing
        assert len(monitor) == 0
        monitor(25e-9)  # crosses 10 ns and 20 ns
        assert [round(t * 1e9) for t in monitor.times_s] == [10, 20]
        monitor(1e-7)  # crosses 30..100 ns
        assert len(monitor) == 10
        assert monitor.times_s == pytest.approx(
            [i * 1e-8 for i in range(1, 11)]
        )

    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigError):
            ResourceMonitor(interval_ns=0)

    def test_probe_registration_frozen_after_first_sample(self):
        monitor = ResourceMonitor()
        monitor.probe("a", lambda now_s: 1.0)
        monitor.sample(1e-9)
        with pytest.raises(ConfigError, match="already"):
            monitor.probe("b", lambda now_s: 2.0)

    def test_duplicate_and_empty_probe_names_rejected(self):
        monitor = ResourceMonitor()
        monitor.probe("a", lambda now_s: 1.0)
        with pytest.raises(ConfigError, match="duplicate"):
            monitor.probe("a", lambda now_s: 2.0)
        with pytest.raises(ConfigError, match="non-empty"):
            monitor.probe("", lambda now_s: 0.0)

    def test_finish_guarantees_tail_sample(self):
        monitor = ResourceMonitor(interval_ns=1000.0)
        monitor.probe("x", lambda now_s: 7.0)
        monitor.finish(3e-9)  # run far shorter than the interval
        assert len(monitor) == 1
        assert monitor.column("x") == [7.0]

    def test_unknown_series_rejected(self):
        monitor = ResourceMonitor()
        monitor.probe("x", lambda now_s: 0.0)
        monitor.sample(1e-9)
        with pytest.raises(ConfigError, match="no monitored series"):
            monitor.column("y")


class TestFastPath:
    def test_no_monitor_leaves_kernel_probe_none(self, small_rmt_config):
        """The monitor-off hot path is the kernel's single ``is None``
        check: nothing is installed on the clock."""
        switch = RMTSwitch(small_rmt_config)
        assert switch._sim.time_probe is None

    def test_chained_probes_both_fire(self):
        sim = Simulator()
        seen: list[tuple[str, float]] = []
        sim.add_time_probe(lambda t: seen.append(("a", t)))
        sim.add_time_probe(lambda t: seen.append(("b", t)))
        sim.time_probe(4.2)
        assert seen == [("a", 4.2), ("b", 4.2)]

    def test_monitor_does_not_perturb_results(self, small_rmt_config):
        _, _, bare = _monitored_rmt(small_rmt_config, interval_ns=1e9)
        app = ParameterServerApp([0, 1, 4, 5], 64, elements_per_packet=1)
        switch = RMTSwitch(small_rmt_config, app)
        plain = switch.run(app.workload(small_rmt_config.port_speed_bps))
        assert bare.duration_s == plain.duration_s
        assert bare.recirculated_packets == plain.recirculated_packets
        assert len(bare.delivered) == len(plain.delivered)


class TestSwitchProbes:
    def test_rmt_series_under_pressure(self, small_rmt_config):
        monitor, switch, result = _monitored_rmt(small_rmt_config)
        names = monitor.names
        assert f"{switch.tm.path}.occupancy" in names
        assert f"{switch.path}.recirculations" in names
        assert f"{switch.path}.recirc_backlog_s" in names
        assert any(".state_accesses" in n for n in names)
        assert any(".tx0.utilization" in n for n in names)
        # The default egress-pin mode recirculates, and the TM queues:
        # both series must be visibly nonzero.
        assert result.recirculated_packets > 0
        assert max(monitor.column(f"{switch.path}.recirculations")) > 0
        assert max(monitor.column(f"{switch.tm.path}.occupancy")) > 0

    def test_adcp_recirculation_series_identically_zero(
        self, small_adcp_config
    ):
        """The architectural claim, machine-checked: ADCP programs never
        recirculate, so the series is all zeros — not merely absent."""
        monitor, switch, result = _monitored_adcp(small_adcp_config)
        column = monitor.column(f"{switch.path}.recirculations")
        assert column and all(v == 0.0 for v in column)
        assert result.recirculated_packets == 0
        # Both TMs and the per-bank central-state series are live.
        assert max(monitor.column(f"{switch.tm1.path}.occupancy")) > 0
        assert any(".bank" in n for n in monitor.names)

    def test_one_switch_per_monitor(self, small_rmt_config):
        monitor = ResourceMonitor()
        RMTSwitch(small_rmt_config, telemetry=Telemetry(monitor=monitor))
        with pytest.raises(ConfigError, match="one switch"):
            RMTSwitch(
                small_rmt_config, telemetry=Telemetry(monitor=monitor)
            )

    def test_summaries_are_column_digests(self, small_rmt_config):
        monitor, switch, _ = _monitored_rmt(small_rmt_config)
        name = f"{switch.tm.path}.occupancy"
        column = monitor.column(name)
        summary = monitor.summaries()[name]
        assert summary.samples == len(column)
        assert summary.peak == max(column)
        assert summary.last == column[-1]
        assert summary.mean == pytest.approx(
            math.fsum(column) / len(column)
        )
        assert summary.peak >= summary.p99 >= 0.0


class TestDeterminism:
    def test_monitor_runs_byte_identical(self, tmp_path):
        """Two seeded runs of the same workload write byte-identical
        time-series CSVs (the acceptance bar for clock-driven sampling)."""
        paths = []
        for tag in ("a", "b"):
            run = run_monitor(
                "recirculate",
                ledger_out=tmp_path / f"ledger_{tag}.json",
                csv_out=tmp_path / f"mon_{tag}.csv",
            )
            paths.append(run.csv_paths)
        assert len(paths[0]) == len(paths[1]) == 1
        assert paths[0][0].read_bytes() == paths[1][0].read_bytes()

    def test_ledger_series_reproducible(self, tmp_path):
        runs = [
            run_monitor(
                "mltrain", ledger_out=tmp_path / f"l{i}.json"
            ).ledger
            for i in range(2)
        ]
        for run in runs:
            run.pop("git_sha")
        assert runs[0] == runs[1]


class TestCrossChecks:
    def test_littles_law_holds_on_steady_workload(self, small_rmt_config):
        """λW from the event spans ≈ the mean of the clock-grid occupancy
        samples — two independent instrumentation paths agreeing."""
        config = dataclasses.replace(
            small_rmt_config, state_mode=StateMode.RECIRCULATE
        )
        monitor = ResourceMonitor(interval_ns=10.0)
        telemetry = Telemetry(monitor=monitor)
        app = ParameterServerApp([0, 1, 4, 5], 128, elements_per_packet=1)
        switch = RMTSwitch(config, app, telemetry=telemetry)
        result = switch.run(app.workload(config.port_speed_bps))
        # 2.5x tolerance: λW over-counts slightly under recirculation
        # (each loop pass re-enters the TM, inflating the residency sum)
        # while grid samples lag events by up to one interval; the check
        # still catches a mis-wired probe, which is off by orders of
        # magnitude, not a factor ~2.
        checks = monitor_littles_checks(
            telemetry.trace, monitor, result.duration_s, tolerance=2.5
        )
        assert [c.component for c in checks] == [switch.tm.path]
        check = checks[0]
        assert check.predicted_occupancy > 0
        assert check.observed_occupancy > 0
        assert check.consistent, (
            f"L={check.predicted_occupancy:.2f} vs "
            f"sampled {check.observed_occupancy:.2f}"
        )


class TestExports:
    def test_csv_shape(self, small_rmt_config):
        monitor, _, _ = _monitored_rmt(small_rmt_config)
        lines = monitor.csv_lines()
        header = lines[0].split(",")
        assert header[0] == "time_ns"
        assert header[1:] == monitor.names
        assert len(lines) == len(monitor) + 1
        assert all(len(l.split(",")) == len(header) for l in lines[1:])

    def test_chrome_counter_events_merge(self, small_rmt_config):
        monitor, _, _ = _monitored_rmt(small_rmt_config)
        events = merged_chrome_events([("rmt", monitor)])
        assert events
        assert all(e["ph"] == "C" for e in events)
        assert all(e["pid"] == "rmt" for e in events)
        assert len(events) == len(monitor) * len(monitor.names)
