"""Tests for metric snapshots and gauges (repro.telemetry.metrics)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.sim.stats import StatsRegistry
from repro.telemetry import MetricRegistry, PeriodicSampler


class TestSampling:
    def test_snapshot_includes_counters_and_gauges(self):
        stats = StatsRegistry()
        stats.counter("sw.delivered").add(5)
        metrics = MetricRegistry(stats)
        metrics.gauge("sw.occupancy", lambda now: 7.0)
        snapshot = metrics.sample(1.5)
        assert snapshot.time_s == 1.5
        assert snapshot.value("sw.delivered") == 5.0
        assert snapshot.value("sw.occupancy") == 7.0

    def test_series_accumulates(self):
        metrics = MetricRegistry(StatsRegistry())
        metrics.sample(1.0)
        metrics.sample(2.0)
        assert [s.time_s for s in metrics] == [1.0, 2.0]
        assert len(metrics) == 2

    def test_gauge_sees_sample_time(self):
        metrics = MetricRegistry()
        metrics.gauge("g", lambda now: now * 2)
        metrics.sample(3.0)
        assert metrics.latest("g") == 6.0

    def test_bind_stats_late(self):
        metrics = MetricRegistry()
        assert metrics.sample(0.0).values == {}
        stats = StatsRegistry()
        stats.counter("c").add(1)
        metrics.bind_stats(stats)
        assert metrics.sample(1.0).value("c") == 1.0

    def test_empty_gauge_name_rejected(self):
        with pytest.raises(ConfigError):
            MetricRegistry().gauge("", lambda now: 0.0)


class TestQueries:
    def _registry(self):
        stats = StatsRegistry()
        stats.counter("adcp.tm1.admitted").add(3)
        stats.counter("adcp.tm2.admitted").add(4)
        metrics = MetricRegistry(stats)
        metrics.gauge("adcp.tm1.occupancy", lambda now: 2.0)
        return metrics

    def test_timeseries(self):
        metrics = self._registry()
        metrics.sample(1.0)
        metrics.sample(2.0)
        assert metrics.timeseries("adcp.tm1.admitted") == [
            (1.0, 3.0),
            (2.0, 3.0),
        ]

    def test_names_prefix(self):
        metrics = self._registry()
        assert metrics.names("adcp.tm1") == [
            "adcp.tm1.admitted",
            "adcp.tm1.occupancy",
        ]

    def test_rollup_counters_only(self):
        metrics = self._registry()
        assert metrics.rollup("adcp.tm") == 7.0

    def test_rollup_with_gauges(self):
        metrics = self._registry()
        assert metrics.rollup("adcp.tm1", now_s=1.0) == 5.0

    def test_latest_unknown_is_zero(self):
        assert MetricRegistry().latest("missing") == 0.0

    def test_snapshot_matching(self):
        metrics = self._registry()
        snapshot = metrics.sample(1.0)
        assert set(snapshot.matching("adcp.tm1")) == {
            "adcp.tm1.admitted",
            "adcp.tm1.occupancy",
        }


class TestPeriodicSampler:
    def test_samples_on_regular_grid(self):
        metrics = MetricRegistry()
        sampler = PeriodicSampler(metrics, interval_s=1.0)
        sampler(0.5)  # not yet
        assert len(metrics.series) == 0
        sampler(2.7)  # crosses 1.0 and 2.0
        assert [s.time_s for s in metrics.series] == [1.0, 2.0]
        sampler(3.0)  # exactly on the boundary
        assert [s.time_s for s in metrics.series] == [1.0, 2.0, 3.0]

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigError):
            PeriodicSampler(MetricRegistry(), interval_s=0.0)
