"""Sampled fabric-wide span tracing: determinism, ledgers, attribution.

The tentpole claims under test:

- head-based sampling is decided once at injection from (seed, relative
  packet id) alone, so the same packets are sampled on every target and
  queue backend, and span ledgers are byte-identical across repeats
  (modulo ``git_sha``);
- the span id survives cross-switch handoffs and is inherited by
  ``OP_RESULT`` emissions, stitching one causal trace per sampled packet;
- ``sampled`` telemetry keeps the PR 7 fast path (``trace is None``,
  batched admission) while recording;
- span hop totals reconcile with the PR 3 bit-exact attribution on a
  recirculation-free run sampled at 1-in-1.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigError
from repro.fabric import run_fabric
from repro.telemetry import Telemetry
from repro.telemetry.ledger import (
    SPAN_LEDGER_SCHEMA,
    diff_ledgers,
    load_ledger,
    series_direction,
    write_ledger,
)
from repro.telemetry.sampler import SpanSampler, TelemetryLevel
from repro.telemetry.spans import (
    SPAN_HOPS,
    SpanRecord,
    SpanRecorder,
    build_span_ledger,
    coflow_critical_paths,
    span_chrome_events,
    span_hop_totals,
)
from repro.units import GBPS


def _strip_sha(ledger: dict) -> str:
    doc = dict(ledger)
    doc.pop("git_sha", None)
    return json.dumps(doc, sort_keys=True)


def _sampled_fabric(target, sample=4, seed=0, workload="fabric-allreduce"):
    recorder = SpanRecorder(SpanSampler(seed=seed, sample=sample))
    run = run_fabric(
        "leaf-spine-2x2", workload, target=target, seed=seed, spans=recorder
    )
    return recorder, run


@pytest.fixture(scope="module")
def rmt_fabric():
    return _sampled_fabric("rmt")


@pytest.fixture(scope="module")
def adcp_fabric():
    return _sampled_fabric("adcp")


class TestTelemetryLevel:
    def test_parse_accepts_names_and_instances(self):
        assert TelemetryLevel.parse("off") is TelemetryLevel.OFF
        assert TelemetryLevel.parse("SAMPLED") is TelemetryLevel.SAMPLED
        assert (
            TelemetryLevel.parse(TelemetryLevel.FULL) is TelemetryLevel.FULL
        )

    def test_parse_rejects_unknown(self):
        with pytest.raises(ConfigError, match="telemetry level"):
            TelemetryLevel.parse("verbose")

    def test_ladder_semantics(self):
        assert all(
            level.preserves_fast_path
            for level in TelemetryLevel
            if level is not TelemetryLevel.FULL
        )
        assert not TelemetryLevel.FULL.preserves_fast_path
        assert not TelemetryLevel.OFF.wants_monitor
        assert TelemetryLevel.COUNTERS.wants_monitor
        assert TelemetryLevel.SAMPLED.wants_monitor
        assert TelemetryLevel.SAMPLED.wants_spans
        assert not TelemetryLevel.COUNTERS.wants_spans

    def test_at_level_wiring(self):
        off = Telemetry.at_level("off")
        assert off.trace.enabled is False
        assert off.monitor is None and off.spans is None
        counters = Telemetry.at_level("counters")
        assert counters.monitor is not None and counters.spans is None
        sampled = Telemetry.at_level("sampled", seed=3, sample=8)
        assert sampled.spans is not None
        assert sampled.spans.sampler.seed == 3
        assert sampled.spans.sampler.sample == 8
        full = Telemetry.at_level("full")
        assert full.trace.enabled is True and full.spans is None


class TestSpanSampler:
    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError, match="sample"):
            SpanSampler(seed=0, sample=0)

    def test_sample_one_admits_everything(self):
        sampler = SpanSampler(seed=0, sample=1)
        assert all(sampler.admits(i) for i in range(100, 200))
        assert sampler.coverage == 1.0

    def test_decisions_depend_only_on_relative_position(self):
        """Two samplers offered disjoint absolute id ranges make the
        identical decision sequence — repeated in-process runs sample
        the same positions despite the global id counter advancing."""
        a = SpanSampler(seed=7, sample=4)
        b = SpanSampler(seed=7, sample=4)
        decisions_a = [a.admits(i) for i in range(0, 256)]
        decisions_b = [b.admits(i) for i in range(100_000, 100_256)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_seed_changes_the_subset(self):
        a = SpanSampler(seed=0, sample=4)
        b = SpanSampler(seed=1, sample=4)
        assert [a.admits(i) for i in range(512)] != [
            b.admits(i) for i in range(512)
        ]

    def test_span_ids_are_run_relative(self):
        sampler = SpanSampler(seed=0, sample=1)
        sampler.admits(4242)
        assert sampler.span_id(4242) == 0
        assert sampler.span_id(4250) == 8


class TestFabricSpans:
    def test_span_survives_switch_handoff(self, rmt_fabric):
        """One sampled packet's hops appear on several switches — the id
        rode through ``switch_handoff``'s per-hop meta reset."""
        recorder, _ = rmt_fabric
        switches_by_span: dict[int, set[str]] = {}
        for record in recorder.records:
            if record.hop != "link":
                switches_by_span.setdefault(record.span, set()).add(
                    record.switch
                )
        assert any(len(s) >= 2 for s in switches_by_span.values())

    def test_link_hops_recorded(self, rmt_fabric):
        recorder, _ = rmt_fabric
        link_records = [r for r in recorder.records if r.hop == "link"]
        assert link_records
        assert all("->" in r.switch for r in link_records)

    def test_emissions_inherit_the_span(self, adcp_fabric):
        """OP_RESULT packets carry their trigger's span id: records for
        packets other than the sampled root share its span."""
        recorder, _ = adcp_fabric
        assert any(r.packet != r.span for r in recorder.records)

    def test_hop_vocabulary(self, rmt_fabric):
        recorder, _ = rmt_fabric
        assert {r.hop for r in recorder.records} <= set(SPAN_HOPS)

    def test_fast_path_survives_sampling(self):
        """Sampling must not disable batched admission (satellite 1's
        regression assert lives in benchmarks; this is the unit check)."""
        recorder, run = _sampled_fabric("rmt", sample=16, seed=0)
        assert run.events_coalesced > 0
        assert recorder.records

    def test_sampled_run_matches_unsampled(self):
        """Sampling is a pure observer: the fabric's ledger is identical
        with and without a recorder attached."""
        _, sampled = _sampled_fabric("rmt", sample=4)
        plain = run_fabric(
            "leaf-spine-2x2", "fabric-allreduce", target="rmt", seed=0
        )
        assert _strip_sha(sampled.ledger()) == _strip_sha(plain.ledger())


class TestSpanLedgerDeterminism:
    @pytest.mark.parametrize("target", ["rmt", "adcp"])
    def test_byte_identical_across_repeats(self, target):
        docs = []
        for _ in range(2):
            recorder, run = _sampled_fabric(target, sample=8)
            docs.append(
                build_span_ledger(
                    "fabric-allreduce",
                    recorder,
                    seed=0,
                    span_coflows=run.span_coflows,
                )
            )
        assert _strip_sha(docs[0]) == _strip_sha(docs[1])

    @pytest.mark.parametrize("backend", ["heap", "calendar", "auto"])
    def test_byte_identical_across_queue_backends(
        self, backend, monkeypatch
    ):
        from repro.sim.event import QUEUE_BACKEND_ENV

        monkeypatch.delenv(QUEUE_BACKEND_ENV, raising=False)
        recorder, run = _sampled_fabric("rmt", sample=8)
        reference = build_span_ledger(
            "fabric-allreduce",
            recorder,
            seed=0,
            span_coflows=run.span_coflows,
        )
        monkeypatch.setenv(QUEUE_BACKEND_ENV, backend)
        recorder, run = _sampled_fabric("rmt", sample=8)
        document = build_span_ledger(
            "fabric-allreduce",
            recorder,
            seed=0,
            span_coflows=run.span_coflows,
        )
        assert _strip_sha(document) == _strip_sha(reference)

    def test_ledger_shape(self, adcp_fabric):
        recorder, run = adcp_fabric
        doc = build_span_ledger(
            "fabric-allreduce",
            recorder,
            seed=0,
            span_coflows=run.span_coflows,
        )
        assert doc["schema"] == SPAN_LEDGER_SCHEMA
        labels = [section["label"] for section in doc["sections"]]
        assert "spans" in labels and "critical_path" in labels
        overview = next(
            s for s in doc["sections"] if s["label"] == "spans"
        )
        coverage = overview["series"]["span.coverage"]
        assert coverage["direction"] == "higher"
        assert 0.0 < coverage["mean"] <= 1.0
        assert len(doc["spans"]) == len(recorder.records)


class TestSpanLedgerDiff:
    """Satellite 3: span ledgers flow through ``load_ledger`` and
    ``repro diff`` with the right improvement directions."""

    def test_load_accepts_span_schema(self, tmp_path, adcp_fabric):
        recorder, run = adcp_fabric
        doc = build_span_ledger(
            "fabric-allreduce",
            recorder,
            seed=0,
            span_coflows=run.span_coflows,
        )
        path = write_ledger(tmp_path / "spans.json", doc)
        assert load_ledger(path)["schema"] == SPAN_LEDGER_SCHEMA

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.other/1"}))
        with pytest.raises(ConfigError, match="schema"):
            load_ledger(path)

    def test_coverage_drop_is_a_regression(self, adcp_fabric):
        recorder, run = adcp_fabric
        base = build_span_ledger(
            "fabric-allreduce",
            recorder,
            seed=0,
            span_coflows=run.span_coflows,
        )
        worse = json.loads(json.dumps(base))
        overview = next(
            s for s in worse["sections"] if s["label"] == "spans"
        )
        overview["series"]["span.coverage"]["mean"] *= 0.5
        diff = diff_ledgers(base, worse)
        assert diff.exit_code == 1
        assert any(
            row.series == "span.coverage" and row.verdict == "regressed"
            for row in diff.rows
        )

    def test_hop_duration_growth_is_a_regression(self, adcp_fabric):
        recorder, run = adcp_fabric
        base = build_span_ledger(
            "fabric-allreduce",
            recorder,
            seed=0,
            span_coflows=run.span_coflows,
        )
        worse = json.loads(json.dumps(base))
        section = next(
            s
            for s in worse["sections"]
            if s["label"] not in ("spans", "critical_path")
            and s["series"]
        )
        name, series = next(iter(section["series"].items()))
        series["mean"] = series["mean"] * 2 + 1.0
        diff = diff_ledgers(base, worse)
        assert any(
            row.series == name and row.verdict == "regressed"
            for row in diff.rows
        )

    def test_direction_metadata(self):
        assert (
            series_direction("span.coverage", {"direction": "higher"})
            == "higher"
        )
        assert series_direction("span.ingress_queue_s", {}) == "lower"
        assert series_direction("sampled_events_per_sec", {}) == "higher"


class TestCriticalPath:
    def test_synthetic_dominant_hop(self):
        records = [
            SpanRecord(0, 0, "s", "ingress_queue", 0.0, 1.0),
            SpanRecord(0, 0, "s", "match_action", 1.0, 2.0),
            SpanRecord(0, 0, "s", "link", 2.0, 9.0),
            SpanRecord(1, 1, "s", "match_action", 0.0, 2.5),
        ]
        paths = coflow_critical_paths(records, {0: "c1", 1: "c1"})
        (path,) = paths
        assert path.coflow == "c1" and path.spans == 2
        assert path.critical_span == 0  # ends at 9.0, later than 2.5
        assert path.cct_s == 9.0
        assert path.dominant == "link"
        assert path.hop_totals["link"] == 7.0
        assert path.other_s == 0.0

    def test_untracked_time_lands_in_other(self):
        records = [
            SpanRecord(0, 0, "s", "match_action", 0.0, 1.0),
            SpanRecord(0, 0, "s", "egress_serial", 5.0, 6.0),
        ]
        (path,) = coflow_critical_paths(records, {0: "c"})
        assert path.other_s == pytest.approx(4.0)
        assert path.dominant == "other"

    def test_unmapped_spans_ignored(self):
        records = [SpanRecord(0, 0, "s", "match_action", 0.0, 1.0)]
        assert coflow_critical_paths(records, {5: "c"}) == []

    def test_fabric_coflows_attributed(self, rmt_fabric):
        recorder, run = rmt_fabric
        paths = coflow_critical_paths(recorder.records, run.span_coflows)
        assert {p.coflow for p in paths} == {"c1", "c2"}
        for path in paths:
            assert path.cct_s > 0
            assert path.dominant in path.hop_totals or path.dominant == "other"
            assert path.other_s >= 0.0
            assert all(v >= 0.0 for v in path.hop_totals.values())
            # The coflow window covers its critical chain's window.
            chain = [
                r for r in recorder.records if r.span == path.critical_span
            ]
            window = max(r.end_s for r in chain) - min(
                r.start_s for r in chain
            )
            assert path.cct_s >= window - 1e-12


class TestProfilerReconciliation:
    """Span hop totals vs PR 3's bit-exact attribution, sampled 1-in-1
    on a recirculation-free run: the four shared buckets must agree
    exactly and ``tm`` must equal ``tm_service + tm_queue``."""

    @pytest.fixture(scope="class")
    def reconciled(self):
        from repro.adcp.config import ADCPConfig
        from repro.adcp.switch import ADCPSwitch
        from repro.apps import ParameterServerApp
        from repro.telemetry.profiler import profile_run

        def build(telemetry):
            config = ADCPConfig(
                num_ports=8, port_speed_bps=100 * GBPS, demux_factor=2,
                central_pipelines=4,
            )
            app = ParameterServerApp([0, 1, 4, 5], 64, elements_per_packet=16)
            switch = ADCPSwitch(config, app, telemetry=telemetry)
            return switch, switch.run(app.workload(config.port_speed_bps))

        sampled_tel = Telemetry.at_level("sampled", seed=0, sample=1)
        _, sampled_result = build(sampled_tel)
        full_tel = Telemetry(capacity=1 << 20)
        _, full_result = build(full_tel)
        assert full_result.recirculated_packets == 0
        profile = profile_run(full_tel.trace, label="adcp")
        return sampled_tel.spans, profile

    def test_fabric_wide_totals_match(self, reconciled):
        spans, profile = reconciled
        totals = span_hop_totals(spans.records)["adcp"]
        for hop in ("ingress_queue", "parse", "match_action", "egress_serial"):
            assert math.isclose(
                totals.get(hop, 0.0),
                profile.bucket_total_s(hop),
                rel_tol=1e-9,
                abs_tol=1e-15,
            ), hop
        assert math.isclose(
            totals["tm"],
            profile.bucket_total_s("tm_service")
            + profile.bucket_total_s("tm_queue"),
            rel_tol=1e-9,
        )

    def test_per_span_chains_match_per_packet_attribution(self, reconciled):
        """Each span chain's hop totals equal the profiler's per-packet
        attribution summed over the chain's packets — the critical-path
        analyzer's numbers are the attribution's numbers."""
        spans, profile = reconciled
        # The two runs share one global packet-id counter, so the full
        # (instrumented) repeat's absolute ids sit at a constant offset
        # from the sampled run's relative ids; at 1-in-1 sampling both
        # cover the same population, anchoring the offset at the minima.
        base = min(profile.packets) - min(r.packet for r in spans.records)
        assert {r.packet + base for r in spans.records} == set(
            profile.packets
        )
        by_span: dict[int, list] = {}
        for record in spans.records:
            by_span.setdefault(record.span, []).append(record)
        checked = 0
        for chain in by_span.values():
            packet_ids = {r.packet + base for r in chain}
            profiles = [
                profile.packets[pid]
                for pid in packet_ids
                if pid in profile.packets
            ]
            if len(profiles) != len(packet_ids):
                continue  # packet left the profiled population (dropped)
            for hop in (
                "ingress_queue", "parse", "match_action", "egress_serial",
            ):
                span_total = sum(
                    r.duration_s for r in chain if r.hop == hop
                )
                prof_total = sum(
                    p.components.get(hop, 0.0) for p in profiles
                )
                assert math.isclose(
                    span_total, prof_total, rel_tol=1e-9, abs_tol=1e-15
                ), hop
            tm_span = sum(r.duration_s for r in chain if r.hop == "tm")
            tm_prof = sum(
                p.components.get("tm_service", 0.0)
                + p.components.get("tm_queue", 0.0)
                for p in profiles
            )
            assert math.isclose(tm_span, tm_prof, rel_tol=1e-9, abs_tol=1e-15)
            checked += 1
        assert checked > 0


class TestChromeExport:
    def test_event_shape(self):
        records = [SpanRecord(3, 5, "leaf0", "parse", 1e-6, 2e-6)]
        (event,) = span_chrome_events(records)
        assert event["ph"] == "X" and event["cat"] == "span"
        assert event["pid"] == "leaf0" and event["tid"] == "span 3"
        assert event["ts"] == pytest.approx(1.0)
        assert event["dur"] == pytest.approx(1.0)
        assert event["args"] == {"span": 3, "packet": 5}

    def test_pid_prefix(self):
        records = [SpanRecord(0, 0, "leaf0", "parse", 0.0, 1.0)]
        (event,) = span_chrome_events(records, "rmt-")
        assert event["pid"] == "rmt-leaf0"


class TestRunSpans:
    def test_both_targets_and_ledger(self, tmp_path):
        from repro.telemetry.runner import run_spans

        run = run_spans(
            "leaf-spine-2x2",
            "fabric-allreduce",
            sample=8,
            ledger_out=tmp_path / "spans.json",
            chrome_out=tmp_path / "spans_chrome.json",
        )
        assert [s.target for s in run.sections] == ["adcp", "rmt"]
        ledger = load_ledger(run.ledger_path)
        assert ledger["schema"] == SPAN_LEDGER_SCHEMA
        labels = [s["label"] for s in ledger["sections"]]
        assert "adcp-spans" in labels and "rmt-spans" in labels
        trace = json.loads(
            (tmp_path / "spans_chrome.json").read_text()
        )
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert any(p.startswith("adcp-") for p in pids)
        assert any(p.startswith("rmt-") for p in pids)
        summary = run.summary()
        assert all(
            s["packets_sampled"] > 0 for s in summary["sections"]
        )
        assert all(s["critical_paths"] for s in summary["sections"])

    def test_single_target_and_repeatability(self):
        from repro.telemetry.runner import run_spans

        first = run_spans(
            "leaf-spine-2x2", "fabric-allreduce", target="rmt", sample=8
        )
        second = run_spans(
            "leaf-spine-2x2", "fabric-allreduce", target="rmt", sample=8
        )
        assert _strip_sha(first.ledger) == _strip_sha(second.ledger)

    def test_rejects_unknown_target(self):
        from repro.telemetry.runner import run_spans

        with pytest.raises(ConfigError, match="target"):
            run_spans("leaf-spine-2x2", "fabric-allreduce", target="tofino")

    def test_trace_sample_merges_span_slices(self, tmp_path):
        from repro.telemetry.runner import run_trace

        run = run_trace(
            "quickstart", out=tmp_path / "trace.json", sample=4
        )
        assert run.spans is not None and run.spans.records
        trace = json.loads((tmp_path / "trace.json").read_text())
        span_events = [
            e for e in trace["traceEvents"] if e.get("cat") == "span"
        ]
        assert span_events
        assert run.summary()["spans"]["packets_sampled"] > 0


class TestServeSpans:
    def test_serve_sampling(self):
        from repro.serve import run_serve

        run = run_serve(
            "leaf-spine-2x2",
            "fabric-allreduce",
            duration_ns=4000.0,
            sample=8,
        )
        assert run.spans is not None
        assert run.spans.sampler.admitted > 0
        assert run.span_records()
        ledger = run.ledger()
        spans_section = next(
            s for s in ledger["sections"] if s["label"] == "spans"
        )
        assert spans_section["series"]["span.coverage"]["mean"] > 0
        assert run.summary()["spans"]["records"] == len(run.spans.records)

    def test_serve_without_sampling_unchanged(self):
        from repro.serve import run_serve

        run = run_serve(
            "leaf-spine-2x2", "fabric-allreduce", duration_ns=4000.0
        )
        assert run.spans is None and run.span_records() == []
        assert all(
            s["label"] != "spans" for s in run.ledger()["sections"]
        )
