"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail with "invalid command 'bdist_wheel'".  With
this shim (and no [build-system] table in pyproject.toml) pip falls back to
the legacy ``setup.py develop`` editable path, which needs no wheel.
"""

from setuptools import setup

setup()
